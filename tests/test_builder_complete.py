"""Builder API completeness: every emit method produces a runnable op."""

import pytest

from repro.isa.builder import ProgramBuilder
from repro.workloads.mem import MemoryImage
from repro.workloads.trace import FunctionalExecutor


def test_every_builder_method_emits_executable_code():
    memory = MemoryImage()
    base = memory.allocate("data", 16)
    b = ProgramBuilder()
    b.li("t0", 12)
    b.li("t1", 5)
    b.li("a0", base)
    # register-register ALU
    b.add("t2", "t0", "t1")
    b.sub("t2", "t0", "t1")
    b.and_("t2", "t0", "t1")
    b.or_("t2", "t0", "t1")
    b.xor("t2", "t0", "t1")
    b.sll("t2", "t0", "t1")
    b.srl("t2", "t0", "t1")
    b.slt("t2", "t0", "t1")
    b.mul("t2", "t0", "t1")
    b.div("t2", "t0", "t1")
    b.rem("t2", "t0", "t1")
    # register-immediate ALU
    b.addi("t3", "t0", 1)
    b.andi("t3", "t0", 3)
    b.ori("t3", "t0", 4)
    b.xori("t3", "t0", 7)
    b.slli("t3", "t0", 2)
    b.srli("t3", "t0", 2)
    b.slti("t3", "t0", 100)
    b.muli("t3", "t0", 3)
    b.mv("t4", "t3")
    # floating point
    b.fli("ft0", 2)
    b.fli("ft1", 3)
    b.fadd("ft2", "ft0", "ft1")
    b.fsub("ft2", "ft0", "ft1")
    b.fmul("ft2", "ft0", "ft1")
    b.fdiv("ft2", "ft0", "ft1")
    b.fmv("ft3", "ft2")
    b.fcvt("ft4", "t0")
    # memory
    b.sd("t0", base="a0", offset=0)
    b.ld("t5", base="a0", offset=0)
    b.fsd("ft2", base="a0", offset=8)
    b.fld("ft5", base="a0", offset=8)
    # control
    b.beq("t0", "t0", "eq_target")
    b.halt()
    b.label("eq_target")
    b.bne("t0", "t1", "ne_target")
    b.halt()
    b.label("ne_target")
    b.blt("t1", "t0", "lt_target")
    b.halt()
    b.label("lt_target")
    b.bge("t0", "t1", "ge_target")
    b.halt()
    b.label("ge_target")
    b.bltu("t1", "t0", "ltu_target")
    b.halt()
    b.label("ltu_target")
    b.bgeu("t0", "t1", "geu_target")
    b.halt()
    b.label("geu_target")
    b.jal("func")
    b.j("end")
    b.label("func")
    b.addi("t6", "t6", 1)
    b.jalr("ra")
    b.label("end")
    b.halt()

    executor = FunctionalExecutor(b.build(), memory)
    for _ in range(200):
        if executor.halted:
            break
        executor.step()
    assert executor.halted
    # Spot checks across categories.
    assert executor.regs["t5"] == 12  # sd/ld roundtrip
    assert executor.regs["ft5"] == pytest.approx(2 / 3)  # last ft2 = fdiv(2,3)
    assert executor.regs["ft4"] == 12.0  # fcvt
    assert executor.regs["t6"] == 1  # call happened
