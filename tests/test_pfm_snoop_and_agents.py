"""Snoop tables, Fetch Agent alignment, Retire Agent packet construction."""

import pytest

from repro.core.params import CoreParams
from repro.core.resources import LaneScheduler
from repro.isa.instructions import OpClass
from repro.pfm.fetch_agent import FetchAgent, FetchAgentError
from repro.pfm.retire_agent import RetireAgent
from repro.pfm.snoop import (
    Bitstream,
    FetchSnoopTable,
    FSTEntry,
    RetireSnoopTable,
    RSTEntry,
    SnoopKind,
)
from repro.workloads.trace import DynInst


# ---------------------------------------------------------------------- #
# snoop tables
# ---------------------------------------------------------------------- #

def test_rst_lookup():
    table = RetireSnoopTable(
        [RSTEntry(0x100, SnoopKind.DEST_VALUE, "x")]
    )
    assert table.lookup(0x100).tag == "x"
    assert table.lookup(0x104) is None
    assert len(table) == 1


def test_rst_duplicate_pc_rejected():
    with pytest.raises(ValueError):
        RetireSnoopTable(
            [
                RSTEntry(0x100, SnoopKind.DEST_VALUE, "a"),
                RSTEntry(0x100, SnoopKind.STORE_VALUE, "b"),
            ]
        )


def test_fst_lookup_and_contains():
    table = FetchSnoopTable([FSTEntry(0x200, "flag")])
    assert table.lookup(0x200).tag == "flag"
    assert 0x200 in table
    assert 0x204 not in table


def test_bitstream_builds_tables():
    bits = Bitstream(
        name="x",
        rst_entries=[RSTEntry(0x100, SnoopKind.ROI_BEGIN, "roi")],
        fst_entries=[FSTEntry(0x200, "b")],
        component_factory=lambda *a: None,
    )
    assert bits.make_rst().lookup(0x100) is not None
    assert bits.make_fst().lookup(0x200) is not None


# ---------------------------------------------------------------------- #
# Fetch Agent
# ---------------------------------------------------------------------- #

def agent(queue=8, clk=4, width=4):
    return FetchAgent(queue_size=queue, clk_ratio=clk, width=width)


def test_push_pop_matching_tag():
    fa = agent()
    fa.push(True, ready=10, tag="w")
    taken, when = fa.try_pop("w", fetch_time=5)
    assert taken is True
    assert when == 10  # stalled until ready
    assert fa.stall_cycles == 5


def test_pop_no_stall_when_ready_early():
    fa = agent()
    fa.push(False, ready=3, tag="w")
    taken, when = fa.try_pop("w", fetch_time=20)
    assert when == 20
    assert fa.stall_cycles == 0


def test_mismatched_tag_dropped():
    fa = agent()
    fa.push(True, ready=0, tag="skipped")
    fa.push(False, ready=0, tag="wanted")
    taken, _ = fa.try_pop("wanted", fetch_time=0)
    assert taken is False
    assert fa.packets_dropped == 1


def test_pop_returns_none_when_not_produced():
    fa = agent()
    assert fa.try_pop("w", fetch_time=0) is None


def test_stale_call_packets_dropped():
    fa = agent()
    fa.push(True, ready=0, tag="w")  # call 0
    fa.on_call_marker()  # consumer moves to call 1
    fa.new_call()  # producer moves to call 1 (flushes pending)
    fa.push(False, ready=0, tag="w")
    taken, _ = fa.try_pop("w", fetch_time=0)
    assert taken is False


def test_new_call_flushes_pending():
    fa = agent()
    fa.push(True, ready=0, tag="a")
    fa.push(True, ready=0, tag="b")
    fa.new_call()
    assert fa.pending_count() == 0
    assert fa.packets_dropped == 2


def test_queue_capacity_at_ready_time():
    fa = agent(queue=2)
    assert fa.push(True, ready=0, tag="a")
    assert fa.push(True, ready=0, tag="b")
    assert not fa.can_push(0)
    assert not fa.push(True, ready=0, tag="c")
    # An entry still in the delay pipe does not occupy the queue.
    assert fa.can_push(-1) or True  # occupancy measured at given time
    assert fa.push(True, ready=100, tag="c") or fa.occupancy_at(0) == 2


def test_apply_squash_refloors_pending():
    fa = agent(clk=4, width=2)
    for i in range(4):
        fa.push(True, ready=i, tag=f"t{i}")
    fa.apply_squash(squash_done=100)
    # Replay pacing: width per RF cycle after squash_done.
    _, when0 = fa.try_pop("t0", fetch_time=0)
    assert when0 == 104  # first replay group
    _, when1 = fa.try_pop("t1", fetch_time=0)
    assert when1 == 104
    _, when2 = fa.try_pop("t2", fetch_time=0)
    assert when2 == 108  # second group


def test_fallback_debt_drops_late_packet():
    fa = agent()
    fa.note_fallback("w")
    fa.push(True, ready=0, tag="w")  # late packet for fallback instance
    fa.push(False, ready=0, tag="w")  # the real next instance
    taken, _ = fa.try_pop("w", fetch_time=0)
    assert taken is False
    assert fa.packets_dropped == 1


def test_runaway_drop_detection():
    fa = agent(queue=FetchAgent.MAX_DROP_RUN + 8)
    for i in range(FetchAgent.MAX_DROP_RUN + 2):
        assert fa.push(True, ready=0, tag="never-wanted")
    with pytest.raises(FetchAgentError):
        fa.try_pop("wanted", fetch_time=0)


# ---------------------------------------------------------------------- #
# Retire Agent
# ---------------------------------------------------------------------- #

def make_dyn(pc=0x100, op=OpClass.INT_ALU, **kw):
    defaults = dict(
        seq=0, pc=pc, mnemonic="addi", op_class=op, dst="t0", srcs=("t1",),
        mem_addr=None, store_value=None, dst_value=42.0, taken=None,
        next_pc=pc + 4, comment="",
    )
    defaults.update(kw)
    return DynInst(**defaults)


def retire_agent(port="ALL"):
    params = CoreParams()
    lanes = LaneScheduler(params.num_lanes, params.issue_width)
    return RetireAgent(params, lanes, port), lanes, params


def test_dest_value_packet_carries_value():
    agent_, _, _ = retire_agent()
    entry = RSTEntry(0x100, SnoopKind.DEST_VALUE, "x")
    packet, send = agent_.build_packet(make_dyn(), entry, retire_time=50)
    assert packet.value == 42.0
    assert send == 50  # all ports idle


def test_dest_value_packet_waits_for_port():
    agent_, lanes, params = retire_agent(port="LS1")
    ls0 = params.ls_lanes()[0]
    lanes.reserve((ls0,), earliest=50)  # lane busy at 50
    entry = RSTEntry(0x100, SnoopKind.DEST_VALUE, "x")
    _, send = agent_.build_packet(make_dyn(), entry, retire_time=50)
    assert send == 51
    assert agent_.port_delay_cycles == 1


def test_port_all_uses_any_idle_lane():
    agent_, lanes, params = retire_agent(port="ALL")
    for lane in range(params.num_lanes - 1):
        lanes.reserve((lane,), earliest=50)
    entry = RSTEntry(0x100, SnoopKind.DEST_VALUE, "x")
    _, send = agent_.build_packet(make_dyn(), entry, retire_time=50)
    assert send == 50  # one lane still idle


def test_store_value_packet_needs_no_port():
    agent_, lanes, params = retire_agent(port="LS1")
    for lane in range(params.num_lanes):
        lanes.reserve((lane,), earliest=50)
    entry = RSTEntry(0x100, SnoopKind.STORE_VALUE, "s")
    dyn = make_dyn(op=OpClass.STORE, store_value=9.0, mem_addr=0x800)
    packet, send = agent_.build_packet(dyn, entry, retire_time=50)
    assert send == 50
    assert packet.value == 9.0
    assert packet.address == 0x800


def test_branch_outcome_packet():
    agent_, _, _ = retire_agent()
    entry = RSTEntry(0x100, SnoopKind.BRANCH_OUTCOME, "b")
    dyn = make_dyn(op=OpClass.BRANCH, taken=True, dst=None, dst_value=None)
    packet, _ = agent_.build_packet(dyn, entry, retire_time=10)
    assert packet.taken is True


def test_roi_begin_packet_carries_value():
    agent_, _, _ = retire_agent()
    entry = RSTEntry(0x100, SnoopKind.ROI_BEGIN, "fillnum")
    packet, _ = agent_.build_packet(make_dyn(dst_value=8.0), entry, 10)
    assert packet.kind is SnoopKind.ROI_BEGIN
    assert packet.value == 8.0


def test_unknown_port_option_rejected():
    params = CoreParams()
    lanes = LaneScheduler(params.num_lanes, params.issue_width)
    with pytest.raises(ValueError):
        RetireAgent(params, lanes, "BOGUS")
