"""Edge conditions of the run loop and configuration plumbing."""

import pytest

from repro.core import PFMParams, SimConfig, SuperscalarCore, simulate
from repro.isa.builder import ProgramBuilder
from repro.workloads.astar import build_astar_workload
from repro.workloads.base import Workload
from repro.workloads.mem import MemoryImage


def tiny_workload():
    b = ProgramBuilder()
    b.li("t0", 1)
    b.addi("t0", "t0", 1)
    b.halt()
    return Workload("tiny", b.build(), MemoryImage())


def test_halt_before_window_exhausts():
    stats = simulate(tiny_workload(), SimConfig(max_instructions=10_000))
    assert stats.instructions == 3  # li, addi, halt
    assert stats.cycles >= 1


def test_pfm_config_without_bitstream_runs_plain():
    workload = tiny_workload()
    assert workload.bitstream is None
    core = SuperscalarCore(
        workload, SimConfig(max_instructions=100, pfm=PFMParams())
    )
    stats = core.run()
    assert core.fabric is None
    assert stats.instructions == 3


def test_run_argument_overrides_config_window():
    core = SuperscalarCore(
        build_astar_workload(grid_width=48, grid_height=48),
        SimConfig(max_instructions=50_000),
    )
    stats = core.run(max_instructions=1_000)
    assert stats.instructions == 1_000


def test_stats_summary_renders_pfm_section_only_when_active():
    plain = simulate(tiny_workload(), SimConfig(max_instructions=100))
    assert "FST" not in plain.summary()
    pfm_stats = simulate(
        build_astar_workload(grid_width=48, grid_height=48),
        SimConfig(max_instructions=8_000, pfm=PFMParams(delay=0)),
    )
    assert "FST hit %" in pfm_stats.summary()


def test_pfm_params_label_round_trips():
    from repro.experiments.runner import parse_config_label

    params = PFMParams(clk_ratio=8, width=2, delay=6, queue_size=16, port="LS")
    reparsed = parse_config_label(params.label())
    assert reparsed.clk_ratio == 8
    assert reparsed.width == 2
    assert reparsed.delay == 6
    assert reparsed.queue_size == 16
    assert reparsed.port == "LS"


def test_invalid_pfm_params_rejected():
    with pytest.raises(ValueError):
        PFMParams(clk_ratio=0)
    with pytest.raises(ValueError):
        PFMParams(width=0)
    with pytest.raises(ValueError):
        PFMParams(delay=-1)
    with pytest.raises(ValueError):
        PFMParams(queue_size=0)
    with pytest.raises(ValueError):
        PFMParams(port="NORTH")


def test_speedup_stable_across_workload_seeds():
    """The astar result must not be an artifact of one obstacle map."""
    for seed in (1, 2, 3):
        baseline = simulate(
            build_astar_workload(grid_width=128, grid_height=128, seed=seed),
            SimConfig(max_instructions=10_000),
        )
        custom = simulate(
            build_astar_workload(grid_width=128, grid_height=128, seed=seed),
            SimConfig(max_instructions=10_000, pfm=PFMParams(delay=0)),
        )
        assert custom.speedup_over(baseline) > 0.8, seed
        assert custom.mpki < baseline.mpki / 4, seed
