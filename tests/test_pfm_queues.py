"""TimedQueue: capacity, visibility, back-pressure semantics."""

import pytest
from hypothesis import given, strategies as st

from repro.pfm.queues import QueueFullError, QueueInvariantError, TimedQueue


def test_push_pop_fifo_order():
    q = TimedQueue("q", capacity=4)
    for i in range(3):
        q.push(i, f"item{i}")
    assert q.pop(10) == "item0"
    assert q.pop(10) == "item1"
    assert q.occupancy == 1


def test_crossing_latency_hides_fresh_entries():
    q = TimedQueue("q", capacity=4, crossing_latency=5)
    q.push(10, "x")
    assert q.peek_visible(12) is None
    assert q.peek_visible(15) == "x"


def test_pop_before_visible_raises():
    q = TimedQueue("q", capacity=4, crossing_latency=5)
    q.push(10, "x")
    with pytest.raises(IndexError):
        q.pop(12)


def test_pop_empty_raises():
    with pytest.raises(IndexError):
        TimedQueue("q", capacity=2).pop(0)


def test_capacity_enforced():
    q = TimedQueue("q", capacity=2)
    q.push(0, "a")
    q.push(0, "b")
    assert not q.can_push()
    with pytest.raises(QueueFullError):
        q.push(0, "c")


def test_earliest_push_full_returns_pop_time():
    q = TimedQueue("q", capacity=1)
    q.push(0, "a")
    q.pop(50)
    q.push(50, "b")
    assert q.earliest_push(10) == 50  # gated by the recorded pop


def test_drain_returns_all_visible():
    q = TimedQueue("q", capacity=8, crossing_latency=2)
    q.push(0, "a")
    q.push(1, "b")
    q.push(100, "c")
    assert q.drain(10) == ["a", "b"]
    assert q.occupancy == 1


def test_clear_counts_as_pops():
    q = TimedQueue("q", capacity=2)
    q.push(0, "a")
    q.push(0, "b")
    dropped = q.clear(5)
    assert dropped == 2
    assert q.occupancy == 0
    assert q.can_push()


def test_head_visible_time():
    q = TimedQueue("q", capacity=2, crossing_latency=3)
    assert q.head_visible_time() is None
    q.push(7, "a")
    assert q.head_visible_time() == 10


def test_stats():
    q = TimedQueue("q", capacity=2)
    q.push(0, "a")
    q.pop(1)
    stats = q.stats()
    assert stats["pushes"] == 1
    assert stats["pops"] == 1
    assert stats["max_occupancy"] == 1


def test_capacity_validation():
    with pytest.raises(ValueError):
        TimedQueue("q", capacity=0)


def test_invariant_error_is_an_index_error():
    """Callers treating 'nothing to pop' as IndexError keep working."""
    assert issubclass(QueueInvariantError, IndexError)


def test_pop_before_visible_diagnostics():
    q = TimedQueue("IntQ-F", capacity=4, crossing_latency=5)
    q.push(10, "x")
    with pytest.raises(QueueInvariantError) as exc_info:
        q.pop(12)
    message = str(exc_info.value)
    assert "IntQ-F" in message
    assert "t=12" in message and "t=15" in message
    assert "crossing_latency=5" in message


def test_pop_empty_diagnostics():
    q = TimedQueue("ObsQ-R", capacity=2)
    q.push(0, "a")
    q.pop(1)
    with pytest.raises(QueueInvariantError) as exc_info:
        q.pop(3)
    message = str(exc_info.value)
    assert "ObsQ-R" in message
    assert "pushes=1" in message and "pops=1" in message


def test_monotonic_push_rejects_time_regression():
    q = TimedQueue("IntQ-IS", capacity=4, monotonic_push=True)
    q.push(10, "a")
    q.push(10, "b")  # equal times are fine (same pipeline exit cycle)
    q.push(12, "c")
    with pytest.raises(QueueInvariantError, match="non-monotonic"):
        q.push(11, "d")
    assert q.occupancy == 3  # the offending push did not land


def test_monotonic_push_off_by_default():
    q = TimedQueue("ObsQ-R", capacity=4)
    q.push(10, "a")
    q.push(5, "b")  # PRF port contention legitimately reorders send times
    assert q.occupancy == 2


@given(st.lists(st.sampled_from(["push", "pop"]), min_size=1, max_size=200))
def test_property_occupancy_bounded(ops):
    """Occupancy stays within [0, capacity] under any push/pop sequence."""
    capacity = 3
    q = TimedQueue("q", capacity=capacity)
    now = 0
    for op in ops:
        now += 1
        if op == "push":
            if q.can_push():
                q.push(now, now)
        else:
            if q.peek_visible(now) is not None:
                q.pop(now)
        assert 0 <= q.occupancy <= capacity
