"""Slipstream 2.0 comparator model."""

from repro.core import PFMParams, SimConfig, simulate
from repro.slipstream import make_astar_slipstream, make_bfs_slipstream
from repro.slipstream.model import SlipstreamOracle
from repro.workloads.astar import build_astar_workload
from repro.workloads.bfs import build_bfs_workload
from repro.workloads.graphs import road_graph

WINDOW = 15_000


def astar_workload():
    return build_astar_workload(grid_width=128, grid_height=128)


def test_oracle_only_covers_branch1():
    workload = astar_workload()
    oracle = make_astar_slipstream(workload)
    executor = workload.executor()
    covered = 0
    uncovered = 0
    for dyn in executor.run(WINDOW):
        if dyn.is_conditional_branch:
            if oracle.predict(dyn) is None:
                uncovered += 1
            else:
                covered += 1
        oracle.observe(dyn)
    assert covered > 0 and uncovered > 0
    assert oracle.pre_executed == covered


def test_incorrect_pre_executions_come_from_blind_window():
    workload = astar_workload()
    oracle = make_astar_slipstream(workload, lead_instructions=400)
    executor = workload.executor()
    wrong = 0
    for dyn in executor.run(WINDOW):
        prediction = oracle.predict(dyn)
        if prediction is not None and prediction != dyn.taken:
            wrong += 1
        oracle.observe(dyn)
    assert wrong == oracle.incorrect_pre_executions
    assert wrong > 0  # the loop-carried dependency bites
    # All errors are stale-view errors: predicted not-visited, was visited.
    # (Checked implicitly: the oracle only errs in that direction.)


def test_zero_lead_is_perfect():
    workload = astar_workload()
    oracle = make_astar_slipstream(workload, lead_instructions=0)
    executor = workload.executor()
    for dyn in executor.run(WINDOW):
        prediction = oracle.predict(dyn)
        if prediction is not None:
            assert prediction == dyn.taken
        oracle.observe(dyn)


def test_slipstream_speedup_between_baseline_and_pfm():
    baseline = simulate(astar_workload(), SimConfig(max_instructions=WINDOW))
    workload = astar_workload()
    slip = simulate(
        workload,
        SimConfig(max_instructions=WINDOW, oracle=make_astar_slipstream(workload)),
    )
    pfm = simulate(
        astar_workload(),
        SimConfig(max_instructions=WINDOW, pfm=PFMParams(delay=0)),
    )
    assert slip.ipc > baseline.ipc  # helps
    assert pfm.ipc > slip.ipc  # but PFM wins (Figure 2)


def test_restarts_substantially_worse_than_local_squash():
    baseline = simulate(astar_workload(), SimConfig(max_instructions=WINDOW))
    workload = astar_workload()
    local = simulate(
        workload,
        SimConfig(max_instructions=WINDOW, oracle=make_astar_slipstream(workload)),
    )
    workload = astar_workload()
    restarts = simulate(
        workload,
        SimConfig(
            max_instructions=WINDOW,
            oracle=make_astar_slipstream(workload, restart_penalty=64),
        ),
    )
    assert restarts.ipc < local.ipc


def test_bfs_slipstream_constructs_and_helps():
    graph = road_graph(side=64)
    baseline = simulate(
        build_bfs_workload(graph=graph), SimConfig(max_instructions=WINDOW)
    )
    workload = build_bfs_workload(graph=graph)
    slip = simulate(
        workload,
        SimConfig(max_instructions=WINDOW, oracle=make_bfs_slipstream(workload)),
    )
    assert slip.ipc > baseline.ipc


def test_oracle_window_slides():
    oracle = SlipstreamOracle(
        branch_pcs={0x100}, store_pcs={0x200}, load_pcs={0x300},
        lead_instructions=10,
    )
    from repro.isa.instructions import OpClass
    from repro.workloads.trace import DynInst

    def store(seq, addr):
        return DynInst(seq=seq, pc=0x200, mnemonic="sd", op_class=OpClass.STORE,
                       dst=None, srcs=("t0", "t1"), mem_addr=addr,
                       store_value=1.0, dst_value=None, taken=None,
                       next_pc=0x204, comment="")

    oracle.observe(store(0, 0x800))
    assert 0x800 in oracle._recent_set
    # Slide far past the lead window.
    idle = DynInst(seq=100, pc=0x900, mnemonic="addi", op_class=OpClass.INT_ALU,
                   dst="t0", srcs=("t0",), mem_addr=None, store_value=None,
                   dst_value=1.0, taken=None, next_pc=0x904, comment="")
    oracle.observe(idle)
    assert 0x800 not in oracle._recent_set
