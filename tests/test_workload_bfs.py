"""bfs kernel: functional equivalence with the reference BFS."""

from repro.workloads.bfs import build_bfs_workload
from repro.workloads.graphs import reference_bfs, road_graph


def test_kernel_parent_array_matches_reference():
    graph = road_graph(side=16, seed=2)
    workload = build_bfs_workload(graph=graph, source=0)
    executor = workload.executor()
    for _ in range(5_000_000):
        if executor.halted:
            break
        executor.step()
    assert executor.halted, "bfs kernel did not complete"

    expected = reference_bfs(graph, source=0)
    measured = [
        workload.memory.load_index("properties", v)
        for v in range(graph.num_nodes)
    ]
    assert measured == expected


def test_kernel_visits_only_reachable_component():
    graph = road_graph(side=12, seed=9, drop_fraction=0.5)
    workload = build_bfs_workload(graph=graph, source=0)
    executor = workload.executor()
    for _ in range(5_000_000):
        if executor.halted:
            break
        executor.step()
    expected = reference_bfs(graph, source=0)
    unreachable = [v for v, p in enumerate(expected) if p < 0]
    for v in unreachable:
        assert workload.memory.load_index("properties", v) == -1


def test_snoop_metadata():
    workload = build_bfs_workload(graph=road_graph(side=12))
    tags = {entry.tag for entry in workload.bitstream.rst_entries}
    assert {"offsets_base", "neighbors_base", "prop_base",
            "frontier_base", "iter_inc", "inner_inc"} <= tags
    fst_tags = {entry.tag for entry in workload.bitstream.fst_entries}
    assert fst_tags == {"loop_exit", "visited"}


def test_branch_populations():
    """The two FST branches dominate dynamic hard-branch behaviour."""
    graph = road_graph(side=16, seed=2)
    workload = build_bfs_workload(graph=graph)
    program = workload.program
    loop_exit_pc = program.pcs_with_comment("fst:loop_exit")[0]
    visited_pc = program.pcs_with_comment("fst:visited")[0]

    executor = workload.executor()
    counts = {loop_exit_pc: 0, visited_pc: 0}
    visits = 0
    for dyn in executor.run(100_000):
        if dyn.pc in counts:
            counts[dyn.pc] += 1
        if dyn.comment.startswith("visited_store"):
            visits += 1
    # Every edge examination passes the loop_exit branch once plus one
    # final exit per node; every examination also runs the visited branch.
    assert counts[loop_exit_pc] > counts[visited_pc] > 0
    assert visits > 0
