"""Folded history: O(1) folds must equal naive folding of the history."""

from hypothesis import given, strategies as st

from repro.frontend.history import FoldedHistory, GlobalHistory


def naive_fold(bits, length, width):
    """Fold the newest *length* bits (newest first) into *width* bits."""
    window = bits[:length]
    value = 0
    # Reconstruct the shift-register fold: push oldest-first.
    for bit in reversed(window):
        value = ((value << 1) | bit)
        value ^= value >> width
        value &= (1 << width) - 1
    return value


@given(
    st.lists(st.integers(0, 1), min_size=1, max_size=200),
    st.integers(2, 40),
    st.integers(2, 12),
)
def test_folded_history_matches_naive(pushes, length, width):
    history = GlobalHistory(max_length=256)
    fold = history.add_fold(length, width)
    seen = []  # newest first
    for bit in pushes:
        history.push(bool(bit))
        seen.insert(0, bit)
        padded = seen + [0] * max(0, length - len(seen))
        assert fold.value == naive_fold(padded, length, width)


def test_recent_returns_newest_bits():
    history = GlobalHistory(max_length=64)
    for bit in (1, 0, 1, 1):  # newest is the last push
        history.push(bool(bit))
    # recent(4): newest at LSB -> 1,1,0,1 = 0b1011
    assert history.recent(4) == 0b1011


def test_recent_shorter_than_history():
    history = GlobalHistory(max_length=16)
    for _ in range(20):
        history.push(True)
    assert history.recent(3) == 0b111


def test_fold_width_validation():
    import pytest

    with pytest.raises(ValueError):
        FoldedHistory(10, 0)


def test_different_histories_give_different_folds():
    h1 = GlobalHistory(max_length=64)
    h2 = GlobalHistory(max_length=64)
    f1 = h1.add_fold(16, 8)
    f2 = h2.add_fold(16, 8)
    for bit in (1, 0, 1, 0, 0, 1, 1, 1):
        h1.push(bool(bit))
    for bit in (0, 1, 1, 0, 1, 0, 0, 0):
        h2.push(bool(bit))
    assert f1.value != f2.value
