"""Program assembly: layout, labels, target resolution."""

import pytest

from repro.isa.builder import ProgramBuilder
from repro.isa.instructions import OpClass
from repro.isa.program import INSTRUCTION_BYTES, Program


def small_program():
    b = ProgramBuilder(base_pc=0x1000)
    b.label("start")
    b.li("t0", 1)
    b.label("loop")
    b.addi("t0", "t0", 1)
    b.blt("t0", "t1", "loop")
    b.halt()
    return b.build()


def test_layout_spacing():
    program = small_program()
    pcs = [inst.pc for inst in program.instructions]
    assert pcs == [0x1000 + i * INSTRUCTION_BYTES for i in range(len(pcs))]


def test_label_resolution():
    program = small_program()
    assert program.pc_of_label("start") == 0x1000
    assert program.pc_of_label("loop") == 0x1004


def test_branch_target_resolved():
    program = small_program()
    branch_pc = program.conditional_branch_pcs()[0]
    assert program.target_of(branch_pc) == program.pc_of_label("loop")


def test_unresolved_label_raises():
    b = ProgramBuilder()
    b.beq("t0", "t1", "nowhere")
    with pytest.raises(ValueError, match="nowhere"):
        b.build()


def test_duplicate_label_raises():
    b = ProgramBuilder()
    b.label("x")
    b.li("t0", 1)
    with pytest.raises(ValueError, match="duplicate"):
        b.label("x")


def test_at_and_has_pc():
    program = small_program()
    assert program.at(0x1000).mnemonic == "li"
    assert program.has_pc(0x1000)
    assert not program.has_pc(0x0FFC)
    with pytest.raises(KeyError):
        program.at(0x0FFC)


def test_next_pc_is_fallthrough():
    program = small_program()
    assert program.next_pc(0x1000) == 0x1004


def test_pcs_with_comment():
    b = ProgramBuilder()
    b.li("t0", 1, comment="snoop:alpha")
    b.li("t1", 2)
    b.li("t2", 3, comment="snoop:alpha more")
    program = b.build()
    assert len(program.pcs_with_comment("snoop:alpha")) == 2


def test_static_mix():
    program = small_program()
    mix = program.static_mix()
    assert mix[OpClass.INT_ALU] == 2
    assert mix[OpClass.BRANCH] == 1
    assert mix[OpClass.HALT] == 1


def test_len():
    assert len(small_program()) == 4
