"""Stage-pipeline equivalence proof.

The stage decomposition of ``SuperscalarCore`` (repro.core.stages) must
be behaviorally invisible: for every workload, with and without the PFM
fabric attached, the architectural digest — a hash over the retired
instruction stream plus final register and memory state — must equal the
digest recorded in the committed goldens, which predate the refactor.
Unlike the full golden harness this asserts only ``arch_digest``, so it
pins down *architectural* equivalence independently of timing stats.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.core import SimConfig, SuperscalarCore
from repro.experiments.runner import parse_config_label
from repro.registry import build_workload, workload_names

GOLDEN_DIR = Path(__file__).parent / "goldens"
GOLDEN_WINDOW = 5_000
PFM_CONFIG = "clk4_w4, delay4, queue32, portLS1"

CASES = [
    (workload, variant)
    for workload in workload_names()
    for variant in ("baseline", "pfm")
]


def _golden_digest(workload: str, variant: str) -> str:
    path = GOLDEN_DIR / f"{workload}--{variant}.json"
    return json.loads(path.read_text())["stats"]["arch_digest"]


@pytest.mark.parametrize(
    "workload,variant", CASES, ids=[f"{w}-{v}" for w, v in CASES]
)
def test_arch_digest_matches_golden(workload: str, variant: str):
    pfm = None if variant == "baseline" else parse_config_label(PFM_CONFIG)
    config = SimConfig(max_instructions=GOLDEN_WINDOW, pfm=pfm)
    core = SuperscalarCore(build_workload(workload), config)

    # The refactor's attachment contract: a PFM run wires the fabric's
    # three agents onto the stage ports; a baseline run leaves every
    # port detached (the stages' fast path).
    ports = (
        core.ctx.fetch_port, core.ctx.execute_port, core.ctx.retire_port,
    )
    if variant == "pfm":
        assert core.fabric is not None
        assert all(port.attached for port in ports)
    else:
        assert core.fabric is None
        assert not any(port.attached for port in ports)

    stats = core.run()
    assert stats.arch_digest == _golden_digest(workload, variant)
