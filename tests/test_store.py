"""The content-addressed result store (repro.store).

Covers the properties the distributed-sweep design leans on: canonical
full-config addressing, byte-deterministic entries, atomic concurrent
publishes, corruption read as a miss, order-insensitive merges, and
hash-sharding that partitions a grid exactly.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.core import PFMParams, SimStats
from repro.experiments import pool as pool_module
from repro.experiments.pool import (
    SweepPoint,
    SweepPool,
    baseline_point,
    pfm_point,
)
from repro.experiments.sweep import (
    run_sweep_shard,
    shard_slice,
    sweep_points,
)
from repro.store import (
    ResultStore,
    STORE_VERSION,
    gc_cache,
    parse_shard,
    parse_size,
    shard_of,
    store_dir,
    trace_key_for,
)
from repro.telemetry import TelemetryParams

WINDOW = 1_500


def _stats(cycles: int = 200) -> SimStats:
    return SimStats(instructions=100, cycles=cycles)


def _all_point_kinds() -> list[SweepPoint]:
    """One point per request shape the store must address distinctly."""
    return [
        baseline_point("libquantum", WINDOW),
        pfm_point("pfm", "libquantum", WINDOW, PFMParams(delay=2)),
        SweepPoint(label="pd", workload="libquantum", window=WINDOW,
                   perfect_dcache=True),
        SweepPoint(label="pb", workload="libquantum", window=WINDOW,
                   perfect_branch_prediction=True),
        SweepPoint(label="orc", workload="astar", window=WINDOW,
                   oracle="astar-slipstream"),
        SweepPoint(label="tel", workload="libquantum", window=WINDOW,
                   telemetry=TelemetryParams()),
    ]


# ---------------------------------------------------------------------- #
# addressing
# ---------------------------------------------------------------------- #


def test_store_keys_distinct_across_point_kinds():
    keys = [point.store_key() for point in _all_point_kinds()]
    assert len(set(keys)) == len(keys)
    for key in keys:
        assert len(key) == 64 and int(key, 16) >= 0  # full sha256 hex


def test_store_key_ignores_label():
    a = pfm_point("a", "libquantum", WINDOW, PFMParams(delay=0))
    b = pfm_point("b", "libquantum", WINDOW, PFMParams(delay=0))
    assert a.store_key() == b.store_key()


def test_store_key_incorporates_workload_content():
    """The trace_key folds the compiled instruction stream into the
    address, so the key is more than the config hash."""
    point = baseline_point("libquantum", WINDOW)
    assert trace_key_for("libquantum", {}) is not None
    assert point.store_key() != point.config_key()


def test_trace_key_degrades_to_none_for_unknown_workload():
    assert trace_key_for("no-such-workload", {}) is None


# ---------------------------------------------------------------------- #
# round trip / byte identity
# ---------------------------------------------------------------------- #


def test_round_trip_every_point_kind(tmp_path):
    store = ResultStore(tmp_path)
    stamped = {}
    for i, point in enumerate(_all_point_kinds()):
        stats = _stats(cycles=300 + i)
        stats.memory_levels = {"L1": {"accesses": 10.0, "misses": 1.0}}
        store.put(point.store_key(), stats)
        stamped[point.store_key()] = stats
    store.reset_memo()  # force the disk path, as a fresh process would
    for key, stats in stamped.items():
        assert store.get(key) == stats
    assert store.counters["hits"] == len(stamped)
    assert store.counters["misses"] == 0


def test_entry_bytes_deterministic(tmp_path):
    """Two hosts that computed the same point publish identical bytes —
    the invariant merge_from uses to equate byte- and result-equality."""
    key = baseline_point("libquantum", WINDOW).store_key()
    a, b = ResultStore(tmp_path / "a"), ResultStore(tmp_path / "b")
    a.put(key, _stats())
    b.put(key, _stats())
    assert a.path_for(key).read_bytes() == b.path_for(key).read_bytes()
    assert a.path_for(key).read_bytes() == ResultStore.encode(key, _stats())


def test_memo_serves_repeat_reads(tmp_path):
    store = ResultStore(tmp_path)
    key = "ab" + "0" * 62
    store.put(key, _stats())
    assert store.get(key) == _stats()
    assert store.counters["memo_hits"] == 1  # put() primed the memo


# ---------------------------------------------------------------------- #
# corruption / recovery
# ---------------------------------------------------------------------- #


def _poisoned(tmp_path, raw: bytes) -> tuple[ResultStore, str]:
    store = ResultStore(tmp_path)
    key = "cd" + "1" * 62
    path = store.path_for(key)
    path.parent.mkdir(parents=True)
    path.write_bytes(raw)
    return store, key


@pytest.mark.parametrize("raw", [
    b'{"version": 1, "key": "cd',                      # torn mid-write
    b"\x00\xff garbage",                               # not JSON at all
    b'["not", "a", "dict"]',                           # wrong shape
    json.dumps({"version": STORE_VERSION - 1, "key": "cd" + "1" * 62,
                "stats": {"instructions": 1, "cycles": 1}}).encode(),
    json.dumps({"version": STORE_VERSION, "key": "f" * 64,
                "stats": {"instructions": 1, "cycles": 1}}).encode(),
    json.dumps({"version": STORE_VERSION, "key": "cd" + "1" * 62,
                "stats": "not-a-dict"}).encode(),
    json.dumps({"version": STORE_VERSION, "key": "cd" + "1" * 62,
                "stats": {"no_such_field": True}}).encode(),
], ids=["torn", "binary", "non-dict", "stale-version", "wrong-key",
        "stats-shape", "stats-schema"])
def test_defective_entries_read_as_misses(tmp_path, raw):
    store, key = _poisoned(tmp_path, raw)
    assert store.get(key) is None
    assert store.counters == {
        "hits": 0, "memo_hits": 0, "misses": 1, "publishes": 0,
        "recoveries": 1,
    }
    # a recomputed result can be republished right over the damage
    store.put(key, _stats())
    store.reset_memo()
    assert store.get(key) == _stats()


def test_missing_entry_is_a_plain_miss(tmp_path):
    store = ResultStore(tmp_path)
    assert store.get("ee" + "2" * 62) is None
    assert store.counters["misses"] == 1
    assert store.counters["recoveries"] == 0  # absence is not damage


# ---------------------------------------------------------------------- #
# concurrent writers
# ---------------------------------------------------------------------- #


def test_concurrent_writers_atomic_last_wins(tmp_path):
    """Two writers hammering one key must leave a whole, valid entry —
    one of theirs, never an interleaving."""
    store = ResultStore(tmp_path)
    key = "aa" + "3" * 62
    rounds = 50

    def writer(cycles: int) -> None:
        own = ResultStore(tmp_path)  # separate instance, like a daemon
        for _ in range(rounds):
            own.put(key, _stats(cycles=cycles))

    threads = [threading.Thread(target=writer, args=(c,)) for c in (111, 222)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    final = store.get(key)
    assert final is not None and final.cycles in (111, 222)
    # no temp droppings left behind
    assert [p.name for p in store.files()] == [f"{key}.json"]
    assert not list(tmp_path.glob("??/*.tmp"))


# ---------------------------------------------------------------------- #
# merge
# ---------------------------------------------------------------------- #


def _filled(directory, spec: dict[str, int]) -> ResultStore:
    store = ResultStore(directory)
    for key, cycles in spec.items():
        store.put(key, _stats(cycles=cycles))
    return store


def test_merge_disjoint_stores(tmp_path):
    k1, k2, k3 = ("a" * 64, "b" * 64, "c" * 64)
    ours = _filled(tmp_path / "ours", {k1: 1})
    theirs = _filled(tmp_path / "theirs", {k2: 2, k3: 3})
    summary = ours.merge_from(theirs)
    assert summary == {"added": 2, "identical": 0, "conflicts": 0,
                       "invalid": 0}
    ours.reset_memo()
    assert {ours.get(k).cycles for k in (k1, k2, k3)} == {1, 2, 3}
    # copied raw: byte-identical to the source entry
    assert ours.path_for(k2).read_bytes() == theirs.path_for(k2).read_bytes()


def test_merge_overlap_and_conflicts_keep_ours(tmp_path):
    shared, conflicted, fresh = ("d" * 64, "e" * 64, "f" * 64)
    ours = _filled(tmp_path / "ours", {shared: 7, conflicted: 10})
    theirs = _filled(tmp_path / "theirs",
                     {shared: 7, conflicted: 99, fresh: 5})
    summary = ours.merge_from(theirs)
    assert summary == {"added": 1, "identical": 1, "conflicts": 1,
                       "invalid": 0}
    ours.reset_memo()
    assert ours.get(conflicted).cycles == 10  # first-wins
    assert ours.get(fresh).cycles == 5


def test_merge_skips_invalid_source_entries(tmp_path):
    ours = ResultStore(tmp_path / "ours")
    theirs = _filled(tmp_path / "theirs", {"a" * 64: 1})
    bad = theirs.path_for("b" * 64)
    bad.parent.mkdir(parents=True, exist_ok=True)
    bad.write_bytes(b"{torn")
    summary = ours.merge_from(tmp_path / "theirs")  # path form accepted
    assert summary == {"added": 1, "identical": 0, "conflicts": 0,
                       "invalid": 1}
    assert len(ours) == 1


def test_merge_order_insensitive(tmp_path):
    """A ⊎ B == B ⊎ A entry-for-entry when there are no conflicts."""
    a_spec, b_spec = {"a" * 64: 1, "c" * 64: 3}, {"b" * 64: 2}
    left = _filled(tmp_path / "l", dict(a_spec))
    left.merge_from(_filled(tmp_path / "lb", dict(b_spec)))
    right = _filled(tmp_path / "r", dict(b_spec))
    right.merge_from(_filled(tmp_path / "ra", dict(a_spec)))
    left_bytes = {p.name: p.read_bytes() for p in left.files()}
    right_bytes = {p.name: p.read_bytes() for p in right.files()}
    assert left_bytes == right_bytes


# ---------------------------------------------------------------------- #
# sharding
# ---------------------------------------------------------------------- #


def test_parse_shard():
    assert parse_shard("1/1") == (1, 1)
    assert parse_shard("2/4") == (2, 4)
    for bad in ("0/4", "5/4", "2", "a/b", "1/0", "-1/4", ""):
        with pytest.raises(ValueError):
            parse_shard(bad)


def test_shard_of_deterministic_and_in_range():
    keys = [f"key-{i}" for i in range(200)]
    for count in (1, 2, 3, 7):
        shards = [shard_of(key, count) for key in keys]
        assert all(1 <= s <= count for s in shards)
        assert shards == [shard_of(key, count) for key in keys]  # stable
    assert all(shard_of(key, 1) == 1 for key in keys)


def test_shard_slice_partitions_grid_exactly():
    points = sweep_points(WINDOW)
    assert shard_slice(points, (1, 1)) == points
    for count in (2, 3, 4):
        slices = [shard_slice(points, (i, count))
                  for i in range(1, count + 1)]
        labels = [p.label for s in slices for p in s]
        assert sorted(labels) == sorted(p.label for p in points)
        assert len(labels) == len(set(labels))  # no point run twice
    with pytest.raises(ValueError):
        shard_slice(points, (3, 2))


@pytest.fixture
def counted_run_point(monkeypatch):
    calls: list[str] = []

    def fake(point: SweepPoint) -> SimStats:
        calls.append(point.label)
        return _stats(cycles=100 + len(point.label))

    monkeypatch.setattr(pool_module, "run_point", fake)
    return calls


def _store_bytes(store: ResultStore) -> dict[str, bytes]:
    return {path.name: path.read_bytes() for path in store.files()}


GRID = {"workloads": ("astar", "libquantum"),
        "configs": ("clk4_w1, delay0", "clk4_w4, delay4, queue32, portLS1")}


def test_four_way_shard_merge_matches_single_host(tmp_path, counted_run_point):
    """The headline determinism property: 4 shard runs merged are
    byte-identical, entry for entry, to one unsharded run."""
    solo = SweepPool(store=tmp_path / "solo")
    solo.run(sweep_points(WINDOW, **GRID))
    solo_count = len(counted_run_point)

    merged = ResultStore(tmp_path / "merged")
    for i in range(1, 5):
        shard_store = tmp_path / f"shard-{i}"
        pool = SweepPool(store=shard_store)
        payload = run_sweep_shard(WINDOW, pool, (i, 4), **GRID)
        assert payload["shard"] == f"{i}/4"
        assert payload["points_selected"] == len(payload["points"])
        summary = merged.merge_from(shard_store)
        assert summary["conflicts"] == summary["invalid"] == 0
    assert len(counted_run_point) == 2 * solo_count  # exact partition
    assert _store_bytes(merged) == _store_bytes(solo.store)


def test_shard_run_requires_a_store():
    with pytest.raises(ValueError, match="result store"):
        run_sweep_shard(WINDOW, SweepPool(), (1, 2), **GRID)


def test_shard_store_identical_across_jobs(tmp_path):
    """Worker count must not leak into published entries (real runs)."""
    grid = {"workloads": ("astar",), "configs": ("clk4_w1, delay0",)}
    stores = {}
    for jobs in (1, 4):
        stores[jobs] = tmp_path / f"jobs{jobs}"
        run_sweep_shard(800, SweepPool(jobs=jobs, store=stores[jobs]),
                        (1, 1), **grid)
    assert _store_bytes(ResultStore(stores[1])) == \
        _store_bytes(ResultStore(stores[4]))
    assert len(ResultStore(stores[1])) == 2  # baseline + one config


# ---------------------------------------------------------------------- #
# gc
# ---------------------------------------------------------------------- #


def test_parse_size():
    assert parse_size("512") == 512
    assert parse_size("64K") == 64 * 1024
    assert parse_size("200m") == 200 * 1024**2
    assert parse_size(" 1G ") == 1024**3
    for bad in ("", "12Q", "ten", "-5"):
        with pytest.raises(ValueError):
            parse_size(bad)


def _touch(path, size: int, mtime: float) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_bytes(b"x" * size)
    import os
    os.utime(path, (mtime, mtime))


def test_gc_evicts_lru_across_sections(tmp_path):
    _touch(tmp_path / "traces" / "old.trace.pkl", 100, 1_000)
    _touch(tmp_path / "baselines" / "mid.json", 100, 2_000)
    _touch(tmp_path / "store" / "ab" / ("a" * 64 + ".json"), 100, 3_000)
    _touch(tmp_path / "store" / "cd" / ("c" * 64 + ".json"), 100, 4_000)

    summary = gc_cache(tmp_path, max_bytes=200)
    assert summary["total_bytes"] == 400
    assert summary["evicted_bytes"] == 200
    assert summary["kept_bytes"] == 200
    assert summary["sections"]["traces"]["evicted_files"] == 1
    assert summary["sections"]["baselines"]["evicted_files"] == 1
    assert summary["sections"]["store"]["evicted_files"] == 0
    # the two newest (both store entries) survived
    assert not (tmp_path / "traces" / "old.trace.pkl").exists()
    assert len(ResultStore(store_dir(tmp_path))) == 2


def test_gc_under_budget_evicts_nothing(tmp_path):
    _touch(tmp_path / "store" / "ab" / ("a" * 64 + ".json"), 50, 1_000)
    summary = gc_cache(tmp_path, max_bytes=1_000)
    assert summary["evicted_bytes"] == 0
    assert summary["sections"]["store"]["files"] == 1


def test_gc_ignores_checkpoints_and_journals(tmp_path):
    _touch(tmp_path / "checkpoints" / "sweep.jsonl", 500, 1_000)
    _touch(tmp_path / "store" / "ab" / ("a" * 64 + ".json"), 50, 2_000)
    summary = gc_cache(tmp_path, max_bytes=0)
    assert summary["total_bytes"] == 50  # state files never counted
    assert (tmp_path / "checkpoints" / "sweep.jsonl").exists()


def test_store_clear(tmp_path):
    store = _filled(tmp_path, {"a" * 64: 1, "b" * 64: 2})
    size = store.size_bytes()
    assert size > 0
    assert store.clear() == (2, size)
    assert len(store) == 0
    assert store.get("a" * 64) is None  # memo dropped too
