"""Experiment harness: runners, report rendering, config parsing."""

import pytest

from repro.core import PFMParams
from repro.experiments.report import ExperimentResult, render_all
from repro.experiments.runner import (
    build_workload,
    parse_config_label,
    pfm_speedup_pct,
    run_baseline,
)

SMALL = 8_000


def test_parse_config_label_full():
    params = parse_config_label("clk4_w2, delay8, queue16, portLS1")
    assert params.clk_ratio == 4
    assert params.width == 2
    assert params.delay == 8
    assert params.queue_size == 16
    assert params.port == "LS1"


def test_parse_config_label_partial_keeps_defaults():
    params = parse_config_label("clk8_w1")
    assert params.clk_ratio == 8 and params.width == 1
    assert params.delay == PFMParams().delay


def test_parse_config_label_rejects_garbage():
    with pytest.raises(ValueError):
        parse_config_label("warp9")


def test_build_workload_all_names():
    for name in (
        "astar", "astar-alt", "bfs-roads", "bfs-youtube", "libquantum",
        "bwaves", "lbm", "milc", "leslie",
    ):
        workload = build_workload(name)
        assert workload.program is not None
        assert workload.bitstream is not None


def test_build_workload_astar_alt_takes_overrides():
    """astar-alt is a first-class workload the experiments layer can sweep."""
    workload = build_workload(
        "astar-alt", table_entries=256, grid_width=96, grid_height=96
    )
    assert workload.program is not None
    assert workload.bitstream is not None


def test_build_workload_bfs_graph_override():
    from repro.workloads.graphs import road_graph

    workload = build_workload("bfs-roads", graph=road_graph(side=16))
    assert workload.program is not None


def test_sweep_grid_covers_all_nine_workloads():
    from repro.experiments.sweep import SWEEP_WORKLOADS, sweep_points

    points = sweep_points(window=4_000)
    assert "astar-alt" in SWEEP_WORKLOADS
    assert len(SWEEP_WORKLOADS) == 9
    workloads = {point.workload for point in points}
    assert workloads == set(SWEEP_WORKLOADS)


def test_build_workload_unknown_name():
    with pytest.raises(ValueError):
        build_workload("doom")


def test_baseline_caching_returns_same_object():
    a = run_baseline("libquantum", SMALL)
    b = run_baseline("libquantum", SMALL)
    assert a is b


def test_pfm_speedup_pct_runs():
    value = pfm_speedup_pct("libquantum", PFMParams(delay=0), SMALL)
    assert isinstance(value, float)


def test_report_rendering_with_paper_values():
    result = ExperimentResult(
        experiment="Figure X",
        title="demo",
        paper={"a": 10.0},
    )
    result.add("a", 12.3)
    result.add("b", -4.0)
    text = result.render()
    assert "Figure X" in text
    assert "12.3" in text and "10.0" in text
    assert "—" in text  # missing paper value for b
    assert result.value("a") == 12.3
    with pytest.raises(KeyError):
        result.value("missing")


def test_render_all_joins():
    r1 = ExperimentResult(experiment="A", title="t")
    r1.add("x", 1.0)
    r2 = ExperimentResult(experiment="B", title="t")
    r2.add("y", 2.0)
    assert "A" in render_all([r1, r2]) and "B" in render_all([r1, r2])


def test_experiment_registry_complete():
    from repro.experiments.__main__ import EXPERIMENTS

    expected = {
        "fig2", "fig8", "tab2", "fig9", "fig10", "fig12", "tab3",
        "fig13", "fig14", "fig17", "tab4", "fig18",
    }
    assert expected <= set(EXPERIMENTS)


def test_table4_experiment_runs_fast():
    from repro.experiments.fpga_table4 import PAPER_TABLE4, table4

    result = table4()
    assert {label for label, _ in result.rows} == set(PAPER_TABLE4)


def test_table2_snoop_percentages_in_band():
    from repro.experiments.astar_sweeps import table2

    result = table2(window=12_000)
    assert 8 <= result.value("fetched hit FST") <= 25  # paper 15.5
    assert 10 <= result.value("retired hit RST") <= 32  # paper 20.3
