"""Functional executor: per-mnemonic semantics and control flow."""

import pytest
from hypothesis import given, strategies as st

from repro.isa.builder import ProgramBuilder
from repro.isa.instructions import OpClass
from repro.workloads.mem import MemoryImage
from repro.workloads.trace import ExecutionError, FunctionalExecutor


def run_program(build, regs=None, max_instructions=10_000, memory=None):
    b = ProgramBuilder()
    build(b)
    memory = memory or MemoryImage()
    executor = FunctionalExecutor(b.build(), memory, regs or {})
    trace = list(executor.run(max_instructions))
    return executor, trace


def test_arithmetic_semantics():
    def build(b):
        b.li("t0", 10)
        b.li("t1", 3)
        b.add("t2", "t0", "t1")
        b.sub("t3", "t0", "t1")
        b.mul("t4", "t0", "t1")
        b.div("t5", "t0", "t1")
        b.rem("t6", "t0", "t1")
        b.halt()

    executor, _ = run_program(build)
    assert executor.regs["t2"] == 13
    assert executor.regs["t3"] == 7
    assert executor.regs["t4"] == 30
    assert executor.regs["t5"] == 3
    assert executor.regs["t6"] == 1


def test_logic_and_shift_semantics():
    def build(b):
        b.li("t0", 0b1100)
        b.li("t1", 0b1010)
        b.and_("t2", "t0", "t1")
        b.or_("t3", "t0", "t1")
        b.xor("t4", "t0", "t1")
        b.slli("t5", "t0", 2)
        b.srli("t6", "t0", 2)
        b.halt()

    executor, _ = run_program(build)
    assert executor.regs["t2"] == 0b1000
    assert executor.regs["t3"] == 0b1110
    assert executor.regs["t4"] == 0b0110
    assert executor.regs["t5"] == 0b110000
    assert executor.regs["t6"] == 0b11


def test_slt_and_immediates():
    def build(b):
        b.li("t0", -5)
        b.slti("t1", "t0", 0)
        b.addi("t2", "t0", 7)
        b.muli("t3", "t0", -2)
        b.halt()

    executor, _ = run_program(build)
    assert executor.regs["t1"] == 1
    assert executor.regs["t2"] == 2
    assert executor.regs["t3"] == 10


def test_zero_register_reads_zero_ignores_writes():
    def build(b):
        b.li("zero", 99)
        b.addi("t0", "zero", 5)
        b.halt()

    executor, _ = run_program(build)
    assert executor.regs.get("zero", 0) == 0 or "zero" not in executor.regs
    assert executor.regs["t0"] == 5


def test_load_store_roundtrip_and_effects():
    memory = MemoryImage()
    base = memory.allocate("data", 8)

    def build(b):
        b.li("t0", base)
        b.li("t1", 77)
        b.sd("t1", base="t0", offset=16)
        b.ld("t2", base="t0", offset=16)
        b.halt()

    executor, trace = run_program(build, memory=memory)
    assert executor.regs["t2"] == 77
    store = next(d for d in trace if d.is_store)
    load = next(d for d in trace if d.is_load)
    assert store.mem_addr == base + 16
    assert store.store_value == 77
    assert load.mem_addr == base + 16
    assert load.dst_value == 77


def test_branch_taken_and_not_taken():
    def build(b):
        b.li("t0", 1)
        b.beq("t0", "zero", "skip")  # not taken
        b.li("t1", 5)
        b.label("skip")
        b.bne("t0", "zero", "end")  # taken
        b.li("t1", 9)  # skipped
        b.label("end")
        b.halt()

    executor, trace = run_program(build)
    assert executor.regs["t1"] == 5
    branches = [d for d in trace if d.is_conditional_branch]
    assert branches[0].taken is False
    assert branches[1].taken is True
    assert branches[1].next_pc != branches[1].pc + 4


def test_signed_compare_branches():
    def build(b):
        b.li("t0", -1)
        b.li("t1", 1)
        b.blt("t0", "t1", "yes")
        b.li("t2", 0)
        b.halt()
        b.label("yes")
        b.li("t2", 1)
        b.halt()

    executor, _ = run_program(build)
    assert executor.regs["t2"] == 1


def test_call_and_return():
    def build(b):
        b.jal("func")
        b.li("t1", 2)
        b.halt()
        b.label("func")
        b.li("t0", 1)
        b.jalr("ra")

    executor, trace = run_program(build)
    assert executor.regs["t0"] == 1
    assert executor.regs["t1"] == 2
    jal = next(d for d in trace if d.mnemonic == "jal")
    assert jal.dst_value == jal.pc + 4  # return address


def test_loop_executes_expected_iterations():
    def build(b):
        b.li("t0", 0)
        b.li("t1", 10)
        b.label("loop")
        b.addi("t0", "t0", 1)
        b.blt("t0", "t1", "loop")
        b.halt()

    executor, trace = run_program(build)
    assert executor.regs["t0"] == 10
    branches = [d for d in trace if d.is_conditional_branch]
    assert len(branches) == 10
    assert sum(d.taken for d in branches) == 9


def test_halt_stops_and_further_step_raises():
    def build(b):
        b.halt()

    executor, trace = run_program(build)
    assert executor.halted
    assert trace[-1].op_class is OpClass.HALT
    with pytest.raises(ExecutionError):
        executor.step()


def test_fp_semantics():
    def build(b):
        b.fli("ft0", 3)
        b.fli("ft1", 2)
        b.fadd("ft2", "ft0", "ft1")
        b.fmul("ft3", "ft0", "ft1")
        b.fdiv("ft4", "ft0", "ft1")
        b.fsub("ft5", "ft0", "ft1")
        b.halt()

    executor, _ = run_program(build)
    assert executor.regs["ft2"] == 5
    assert executor.regs["ft3"] == 6
    assert executor.regs["ft4"] == 1.5
    assert executor.regs["ft5"] == 1


def test_sequence_numbers_and_pcs_monotonic():
    def build(b):
        b.li("t0", 0)
        b.li("t1", 3)
        b.label("loop")
        b.addi("t0", "t0", 1)
        b.blt("t0", "t1", "loop")
        b.halt()

    _, trace = run_program(build)
    assert [d.seq for d in trace] == list(range(len(trace)))


def test_run_respects_max_instructions():
    def build(b):
        b.li("t0", 0)
        b.label("loop")
        b.addi("t0", "t0", 1)
        b.j("loop")

    _, trace = run_program(build, max_instructions=25)
    assert len(trace) == 25


@given(st.integers(-1000, 1000), st.integers(-1000, 1000))
def test_property_add_sub_match_python(a, b_val):
    def build(b):
        b.li("t0", a)
        b.li("t1", b_val)
        b.add("t2", "t0", "t1")
        b.sub("t3", "t0", "t1")
        b.halt()

    executor, _ = run_program(build)
    assert executor.regs["t2"] == a + b_val
    assert executor.regs["t3"] == a - b_val


@given(st.integers(-100, 100), st.integers(-100, 100))
def test_property_branch_consistency(a, b_val):
    """Every branch mnemonic agrees with its Python comparison."""
    def build(b):
        b.li("t0", a)
        b.li("t1", b_val)
        b.beq("t0", "t1", "x")
        b.bne("t0", "t1", "x")
        b.blt("t0", "t1", "x")
        b.bge("t0", "t1", "x")
        b.label("x")
        b.halt()

    _, trace = run_program(build)
    outcomes = {}
    for dyn in trace:
        if dyn.is_conditional_branch:
            outcomes[dyn.mnemonic] = dyn.taken
            if dyn.taken:
                break
    if "beq" in outcomes:
        assert outcomes["beq"] == (a == b_val)
    if "bne" in outcomes:
        assert outcomes["bne"] == (a != b_val)
    if "blt" in outcomes:
        assert outcomes["blt"] == (a < b_val)
    if "bge" in outcomes:
        assert outcomes["bge"] == (a >= b_val)
