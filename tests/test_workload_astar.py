"""astar kernel: functional equivalence with a Python wavefront model."""

from repro.workloads.astar import build_astar_workload, build_grid
from repro.workloads.mem import WORD_BYTES


def python_wavefront(maparp, width, start, fillnum, end_index, max_steps=10**9):
    """Reference model of the kernel's fill()/makebound2() semantics."""
    offsets = [-width - 1, -width, -width + 1, -1, 1,
               width - 1, width, width + 1]
    visited_fill: dict[int, int] = {}
    visited_num: dict[int, int] = {}
    bound1 = [start]
    step = 0
    flend = False
    while bound1 and not flend and step < max_steps:
        bound2 = []
        for index in bound1:
            for off in offsets:
                index1 = index + off
                if visited_fill.get(index1) != fillnum:
                    if maparp[index1] == 0:
                        bound2.append(index1)
                        visited_fill[index1] = fillnum
                        visited_num[index1] = step
                        if index1 == end_index:
                            flend = True
        bound1 = bound2
        step += 1
    return visited_fill, visited_num, step


def test_grid_border_blocked():
    width, height = 12, 9
    grid = build_grid(width, height, obstacle_density=0.0, seed=1)
    for x in range(width):
        assert grid[x] == 1
        assert grid[(height - 1) * width + x] == 1
    for y in range(height):
        assert grid[y * width] == 1
        assert grid[y * width + width - 1] == 1
    # Interior fully free at density 0.
    assert grid[4 * width + 5] == 0


def test_kernel_matches_python_model():
    workload = build_astar_workload(
        grid_width=40, grid_height=40, obstacle_density=0.25, seed=3
    )
    width = 40
    maparp = [
        workload.memory.load_index("maparp", i) for i in range(40 * 40)
    ]
    start = workload.metadata["start"]
    end_index = workload.metadata["end_index"]

    executor = workload.executor()
    for _ in range(3_000_000):
        if executor.halted:
            break
        executor.step()
    assert executor.halted, "kernel did not run to completion"

    visited_fill, visited_num, steps = python_wavefront(
        maparp, width, start, fillnum=8, end_index=end_index
    )

    waymap_base = workload.memory.base("waymap")
    for index1, fill in visited_fill.items():
        assert workload.memory.load(waymap_base + index1 * 16) == fill
        assert (
            workload.memory.load(waymap_base + index1 * 16 + WORD_BYTES)
            == visited_num[index1]
        )
    # No extra cells were marked.
    marked = sum(
        1
        for i in range(40 * 40)
        if workload.memory.load(waymap_base + i * 16) == 8
    )
    assert marked == len(visited_fill)


def test_snoop_metadata_complete():
    workload = build_astar_workload(grid_width=32, grid_height=32)
    bits = workload.bitstream
    tags = {entry.tag for entry in bits.rst_entries}
    assert {"fillnum", "yoffset", "worklist_base", "waymap_base",
            "maparp_base", "iter_inc"} <= tags
    fst_tags = {entry.tag for entry in bits.fst_entries}
    assert len(fst_tags) == 16  # 8 waymap + 8 maparp branches
    assert bits.metadata["call_marker_pcs"]


def test_sixteen_difficult_branches_exist():
    workload = build_astar_workload(grid_width=32, grid_height=32)
    fst_pcs = {entry.pc for entry in workload.bitstream.fst_entries}
    branch_pcs = set(workload.program.conditional_branch_pcs())
    assert fst_pcs <= branch_pcs
    assert len(fst_pcs) == 16


def test_deterministic_build():
    a = build_astar_workload(grid_width=24, grid_height=24, seed=5)
    b = build_astar_workload(grid_width=24, grid_height=24, seed=5)
    assert [i.mnemonic for i in a.program.instructions] == [
        i.mnemonic for i in b.program.instructions
    ]
    assert a.memory.load_index("maparp", 100) == b.memory.load_index("maparp", 100)
