"""Fault injection: plans, injector mechanics, the equivalence oracle.

The load-bearing property: every built-in fault plan — packets dropped,
duplicated, bit-flipped, stuck, lost squash-done, a frozen clkC, an MLB
squeezed to 2 entries — retires architectural state bit-identical to the
plain-core baseline.  Faults are timing-domain events; hints can never
leak into what the program computes.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.core import PFMParams, SimConfig, simulate
from repro.core.stats import SimStats
from repro.core.watchdog import WatchdogParams
from repro.experiments.faults import campaign_watchdog
from repro.faults import (
    BUILTIN_PLANS,
    FaultInjector,
    FaultPlan,
    check_equivalence,
    get_plan,
)
from repro.pfm.packets import LoadPacket, LoadReturn, ObsPacket
from repro.pfm.snoop import SnoopKind
from repro.workloads.astar import build_astar_workload

WINDOW = 1_500


def astar_stats(pfm: PFMParams | None = None) -> SimStats:
    workload = build_astar_workload(grid_width=64, grid_height=64)
    return simulate(workload, SimConfig(max_instructions=WINDOW, pfm=pfm))


@pytest.fixture(scope="module")
def baseline() -> SimStats:
    return astar_stats()


# ---------------------------------------------------------------------- #
# plan validation
# ---------------------------------------------------------------------- #


def test_plan_probability_validation():
    with pytest.raises(ValueError, match="obs_drop"):
        FaultPlan(obs_drop=1.5)
    with pytest.raises(ValueError, match="ret_corrupt"):
        FaultPlan(ret_corrupt=-0.1)


def test_plan_stuck_and_mlb_validation():
    with pytest.raises(ValueError, match="pred_stuck"):
        FaultPlan(pred_stuck="sideways")
    with pytest.raises(ValueError, match="mlb_entries_override"):
        FaultPlan(mlb_entries_override=0)


def test_get_plan_lookup_and_reseed():
    assert get_plan("chaos") is BUILTIN_PLANS["chaos"]
    reseeded = get_plan("chaos", seed=7)
    assert reseeded.seed == 7
    assert reseeded.obs_drop == BUILTIN_PLANS["chaos"].obs_drop
    with pytest.raises(ValueError, match="unknown fault plan"):
        get_plan("nope")


def test_watchdog_params_validation():
    with pytest.raises(ValueError):
        WatchdogParams(fetch_timeout_cycles=0)
    with pytest.raises(ValueError):
        WatchdogParams(min_override_accuracy=1.5)
    with pytest.raises(ValueError):
        WatchdogParams(mlb_full_streak=0)
    assert not WatchdogParams().active()
    assert campaign_watchdog().active()


# ---------------------------------------------------------------------- #
# injector mechanics (unit level)
# ---------------------------------------------------------------------- #


def _obs(value=12.0, taken=None) -> ObsPacket:
    return ObsPacket(
        kind=SnoopKind.DEST_VALUE, tag="t", pc=0x40, value=value, taken=taken
    )


def test_stuck_taken_forces_direction():
    injector = FaultInjector(get_plan("stuck-taken"))
    for original in (True, False, False, True):
        delivered, taken = injector.on_pred(original)
        assert delivered and taken is True
    assert injector.counts["pred_stuck"] == 4


def test_obs_drop_and_dup_fan_out():
    injector = FaultInjector(FaultPlan(name="all-drop", obs_drop=1.0))
    assert injector.on_obs(_obs()) == []
    injector = FaultInjector(FaultPlan(name="all-dup", obs_dup=1.0))
    fanned = injector.on_obs(_obs())
    assert len(fanned) == 2
    assert fanned[0] == fanned[1]
    assert fanned[0] is not fanned[1]


def test_corrupt_preserves_value_type():
    injector = FaultInjector(FaultPlan(name="all-corrupt", obs_corrupt=1.0))
    (packet,) = injector.on_obs(_obs(value=12.0))
    assert isinstance(packet.value, float)
    assert packet.value != 12.0
    injector = FaultInjector(FaultPlan(name="all-ret", ret_corrupt=1.0))
    ret = injector.on_return(LoadReturn(ident=1, value=5, address=64))
    assert isinstance(ret.value, int)
    assert ret.value != 5


def test_load_corrupt_yields_int_address():
    injector = FaultInjector(FaultPlan(name="all-load", load_corrupt=1.0))
    (packet,) = injector.on_load(
        LoadPacket(ident=1, address=128, is_prefetch=False)
    )
    assert isinstance(packet.address, int)
    assert packet.address != 128


def test_frozen_component_counts_once():
    injector = FaultInjector(FaultPlan(name="dead", dead_at_rf_cycle=10))
    assert not injector.component_frozen(9)
    assert injector.component_frozen(10)
    assert injector.component_frozen(11)
    assert injector.counts["component_frozen"] == 1


def test_mlb_entries_override():
    assert FaultInjector(get_plan("mlb-thrash")).mlb_entries(64) == 2
    assert FaultInjector(get_plan("chaos")).mlb_entries(64) == 64


def test_seed_changes_decision_stream():
    a = FaultInjector(get_plan("chaos", seed=0))
    b = FaultInjector(get_plan("chaos", seed=1))
    decisions_a = [a.on_pred(True) for _ in range(200)]
    decisions_b = [b.on_pred(True) for _ in range(200)]
    assert decisions_a != decisions_b
    # same seed: bit-identical decision stream (process-independent)
    c = FaultInjector(get_plan("chaos", seed=0))
    assert decisions_a == [c.on_pred(True) for _ in range(200)]


# ---------------------------------------------------------------------- #
# the oracle itself
# ---------------------------------------------------------------------- #


def test_oracle_accepts_identical_digests():
    a = SimStats(instructions=10, cycles=20, arch_digest="d" * 64)
    b = SimStats(instructions=10, cycles=99, arch_digest="d" * 64)
    verdict = check_equivalence(a, b)
    assert verdict and verdict.ok


def test_oracle_rejects_digest_mismatch():
    a = SimStats(instructions=10, arch_digest="a" * 64)
    b = SimStats(instructions=10, arch_digest="b" * 64)
    verdict = check_equivalence(a, b)
    assert not verdict
    assert "leaked" in verdict.reason


def test_oracle_rejects_count_mismatch_and_missing_digest():
    a = SimStats(instructions=10, arch_digest="a" * 64)
    b = SimStats(instructions=11, arch_digest="a" * 64)
    assert "instruction counts" in check_equivalence(a, b).reason
    assert "missing" in check_equivalence(a, SimStats(instructions=10)).reason


def test_digest_is_always_on(baseline):
    assert len(baseline.arch_digest) == 64


# ---------------------------------------------------------------------- #
# end-to-end: every built-in plan is architecturally invisible
# ---------------------------------------------------------------------- #


@pytest.mark.parametrize("plan_name", sorted(BUILTIN_PLANS))
def test_builtin_plan_architecturally_equivalent(plan_name, baseline):
    pfm = PFMParams(
        fault_plan=BUILTIN_PLANS[plan_name], watchdog=campaign_watchdog()
    )
    faulted = astar_stats(pfm)
    verdict = check_equivalence(baseline, faulted)
    assert verdict.ok, f"{plan_name}: {verdict.reason}"


def test_clean_watchdog_run_trips_nothing(baseline):
    stats = astar_stats(PFMParams(watchdog=campaign_watchdog()))
    assert stats.watchdog_dead_declarations == 0
    assert stats.watchdog_override_disables == 0
    assert stats.watchdog_load_throttle_events == 0
    assert stats.watchdog_squash_timeouts == 0
    assert stats.fault_events == {}
    assert check_equivalence(baseline, stats).ok


def test_numpy_backend_falls_back_under_fault_and_watchdog_knobs():
    """The vectorized backend refuses fabric-carrying runs: a pinned
    ``backend="numpy"`` with a FaultPlan or watchdog silently (but
    countably) runs the reference engine instead."""
    from repro.backends import have_numpy
    from repro.core import CoreParams
    from repro.registry import build_workload

    if not have_numpy():
        pytest.skip("numpy not installed")

    def run(pfm: PFMParams | None) -> SimStats:
        return simulate(
            build_workload("astar"),
            SimConfig(
                core=CoreParams(backend="numpy"),
                max_instructions=WINDOW,
                pfm=pfm,
            ),
        )

    # Trace-replayable plain run: numpy really engages.
    plain = run(None)
    assert plain.backend == "numpy"
    assert plain.backend_fallbacks == 0

    for pfm in (
        PFMParams(fault_plan=get_plan("drop-obs")),
        PFMParams(watchdog=campaign_watchdog()),
        PFMParams(
            fault_plan=get_plan("dead-component"),
            watchdog=campaign_watchdog(),
        ),
    ):
        stats = run(pfm)
        assert stats.backend == "python"
        assert stats.backend_fallbacks == 1
        # The fallback is the reference engine: still architecturally
        # equivalent to the numpy-executed plain run.
        assert check_equivalence(plain, stats).ok


def test_dead_component_completes_via_fallback(baseline):
    pfm = PFMParams(
        fault_plan=get_plan("dead-component"), watchdog=campaign_watchdog()
    )
    stats = astar_stats(pfm)  # completing at all is half the assertion
    assert stats.instructions == baseline.instructions
    assert stats.watchdog_dead_declarations == 1
    assert stats.pfm_fallback_predictions > 0
    assert check_equivalence(baseline, stats).ok


def test_lost_squash_done_bounded_by_watchdog():
    pfm = PFMParams(
        fault_plan=get_plan("lost-squash-done"), watchdog=campaign_watchdog()
    )
    stats = astar_stats(pfm)
    assert stats.fault_events.get("squash_done_lose", 0) > 0
    assert stats.watchdog_squash_timeouts > 0


def test_fault_run_deterministic():
    pfm = PFMParams(
        fault_plan=get_plan("chaos"), watchdog=campaign_watchdog()
    )
    first = astar_stats(pfm)
    second = astar_stats(pfm)
    assert dataclasses.asdict(first) == dataclasses.asdict(second)
    assert first.fault_events  # chaos actually fired
