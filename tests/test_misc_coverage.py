"""Smaller behaviours across modules."""

from repro.core import PFMParams, SimConfig, SuperscalarCore
from repro.core.stats import SimStats
from repro.pfm.packets import LoadPacket, ObsPacket, PredPacket, SquashPacket
from repro.pfm.snoop import SnoopKind
from repro.workloads.astar import build_astar_workload


def test_packet_dataclasses_hold_fields():
    obs = ObsPacket(
        kind=SnoopKind.STORE_VALUE, tag="s", pc=0x10, value=1.0, address=0x80
    )
    assert obs.kind is SnoopKind.STORE_VALUE and obs.address == 0x80
    pred = PredPacket(call_id=2, seq=5, taken=True)
    assert pred.call_id == 2 and pred.taken
    load = LoadPacket(ident=9, address=0x100, is_prefetch=True)
    assert load.is_prefetch
    squash = SquashPacket(core_time=77, reason="branch")
    assert squash.core_time == 77


def test_stats_pfm_accuracy():
    stats = SimStats()
    assert stats.pfm_accuracy == 0.0
    stats.pfm_predicted_branches = 100
    stats.pfm_mispredicts = 5
    assert stats.pfm_accuracy == 0.95


def test_stats_speedup_against_zero_baseline():
    stats = SimStats()
    stats.instructions, stats.cycles = 100, 100
    assert stats.speedup_over(SimStats()) == 0.0


def test_fabric_queue_stats_shape():
    core = SuperscalarCore(
        build_astar_workload(grid_width=48, grid_height=48),
        SimConfig(max_instructions=6_000, pfm=PFMParams(delay=0)),
    )
    core.run()
    stats = core.fabric.queue_stats()
    assert set(stats) == {"ObsQ-R", "IntQ-IS", "ObsQ-EX", "IntQ-F"}
    assert stats["ObsQ-R"]["pushes"] > 0
    assert stats["IntQ-IS"]["pushes"] > 0
    assert stats["IntQ-F"]["pushes"] > 0
    for counters in stats.values():
        assert counters["full_rejects"] >= 0


def test_obs_q_max_occupancy_bounded_by_capacity():
    params = PFMParams(delay=0, queue_size=8)
    core = SuperscalarCore(
        build_astar_workload(grid_width=48, grid_height=48),
        SimConfig(max_instructions=6_000, pfm=params),
    )
    core.run()
    for name, queue_stats in core.fabric.queue_stats().items():
        if name == "IntQ-F":
            # Its high-water mark spans the whole pending prediction
            # stream, delay pipeline included (see FetchAgent.stats).
            continue
        assert queue_stats["max_occupancy"] <= 8, name


def test_component_structures_all_have_width():
    from repro.experiments.fpga_table4 import component_structures

    for name, structure in component_structures().items():
        assert structure.get("width", 0) >= 1, name
        assert all(v >= 0 for v in structure.values()), name


def test_tlb_cost_visible_for_agent_loads():
    """Agent loads translate through the TLB like demand loads (§2.4)."""
    core = SuperscalarCore(
        build_astar_workload(grid_width=128, grid_height=128),
        SimConfig(max_instructions=8_000, pfm=PFMParams(delay=0)),
    )
    before = core.hierarchy.tlb.accesses
    core.run()
    assert core.hierarchy.tlb.accesses > before
    assert core.hierarchy.tlb.misses > 0
