"""Register-name tables and classification."""

import pytest

from repro.isa.registers import (
    FP_REGISTERS,
    INT_REGISTERS,
    ZERO_REGISTER,
    is_fp_register,
    is_int_register,
    register_index,
)


def test_thirty_two_integer_registers():
    assert len(INT_REGISTERS) == 32


def test_thirty_two_fp_registers():
    assert len(FP_REGISTERS) == 32


def test_no_duplicate_names():
    assert len(set(INT_REGISTERS)) == 32
    assert len(set(FP_REGISTERS)) == 32
    assert not set(INT_REGISTERS) & set(FP_REGISTERS)


def test_zero_register_is_integer():
    assert ZERO_REGISTER == "zero"
    assert is_int_register("zero")
    assert INT_REGISTERS[0] == "zero"


def test_abi_names_present():
    for name in ("ra", "sp", "t0", "t6", "s0", "s11", "a0", "a7"):
        assert is_int_register(name)


def test_fp_names_present():
    for name in ("ft0", "ft11", "fa0", "fa7", "fs0", "fs11"):
        assert is_fp_register(name)


def test_classification_is_exclusive():
    assert not is_fp_register("t0")
    assert not is_int_register("ft0")
    assert not is_int_register("bogus")
    assert not is_fp_register("bogus")


def test_register_index_dense_and_unique():
    indices = [register_index(r) for r in INT_REGISTERS + FP_REGISTERS]
    assert sorted(indices) == list(range(64))


def test_register_index_unknown_raises():
    with pytest.raises(ValueError):
        register_index("x99")
