"""Self-healing fabric: quiesce/drain/hot-swap state machine and recovery.

Three layers of assertions, mirroring the chaos campaign's claims:

* **Unit** — :class:`~repro.core.watchdog.RecoveryPolicy` validation, the
  controller's transition ledger, the Fetch/Load Agent flush-and-realign
  contracts a hot swap depends on, and the override breaker's backoff cap.
* **Recovery matrix** — the liveness fault plans run with and without a
  :class:`~repro.core.watchdog.RecoveryPolicy`: with recovery the fabric
  must end re-ACTIVE with at least one completed reload, retain strictly
  more IPC than its no-recovery twin, and stay architecturally equivalent
  to the plain baseline (recovery must never buy IPC with state).
* **Invisibility** — a scheduled mid-run same-bitstream swap retires an
  ``arch_digest`` identical to the unswapped run, and the whole chaos
  payload is byte-identical across ``SweepPool`` worker counts.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.core import PFMParams, SimConfig, SuperscalarCore, simulate
from repro.core.stats import SimStats
from repro.core.watchdog import RecoveryPolicy, Watchdog, WatchdogParams
from repro.experiments.chaos import (
    CHAOS_SMOKE_WINDOW,
    campaign_recovery,
    run_chaos,
)
from repro.experiments.faults import campaign_watchdog
from repro.experiments.pool import SweepPool
from repro.faults import BUILTIN_PLANS, check_equivalence, get_plan
from repro.pfm.reconfig import FabricState
from repro.workloads.astar import build_astar_workload

#: The recovery-matrix window: long enough past the fault trigger
#: (dead_at_rf_cycle=1000, i.e. core cycle 4000) plus the reload latency
#: (2048+ cycles) for the revived component to win IPC back.
WINDOW = 10_000


def astar_stats(
    pfm: PFMParams | None = None, window: int = WINDOW
) -> SimStats:
    workload = build_astar_workload(grid_width=64, grid_height=64)
    return simulate(workload, SimConfig(max_instructions=window, pfm=pfm))


def recovery_pfm(plan_name: str | None, recovery: RecoveryPolicy | None):
    return PFMParams(
        watchdog=campaign_watchdog(),
        fault_plan=None if plan_name is None else BUILTIN_PLANS[plan_name],
        recovery=recovery or RecoveryPolicy(),
    )


@pytest.fixture(scope="module")
def baseline() -> SimStats:
    return astar_stats()


# ---------------------------------------------------------------------- #
# policy validation
# ---------------------------------------------------------------------- #


def test_recovery_policy_validation():
    with pytest.raises(ValueError, match="max_reloads"):
        RecoveryPolicy(max_reloads=-1)
    with pytest.raises(ValueError, match="reload_backoff_factor"):
        RecoveryPolicy(reload_backoff_factor=0)
    with pytest.raises(ValueError, match="drain_timeout_cycles"):
        RecoveryPolicy(drain_timeout_cycles=0)
    with pytest.raises(ValueError, match="squash_timeout_reload_after"):
        RecoveryPolicy(squash_timeout_reload_after=0)
    with pytest.raises(ValueError, match="scheduled_reload_at"):
        RecoveryPolicy(scheduled_reload_at=-5)


def test_recovery_policy_activation():
    assert not RecoveryPolicy().active()
    assert RecoveryPolicy(max_reloads=1).active()
    assert RecoveryPolicy(scheduled_reload_at=100).active()
    assert campaign_recovery().active()


def test_inactive_policy_builds_no_controller():
    stats = astar_stats(recovery_pfm(None, None), window=1_500)
    # fabric_state reports through the legacy enabled flag
    assert stats.fabric_state == "active"
    assert stats.reconfigs == 0


# ---------------------------------------------------------------------- #
# state machine (transition ledger)
# ---------------------------------------------------------------------- #


def _run_core(pfm: PFMParams, window: int = WINDOW) -> SuperscalarCore:
    core = SuperscalarCore(
        build_astar_workload(grid_width=64, grid_height=64),
        SimConfig(max_instructions=window, pfm=pfm),
    )
    core.run()
    return core


def test_reload_walks_the_state_machine(baseline):
    core = _run_core(recovery_pfm("dead-component", campaign_recovery()))
    rc = core.fabric.reconfig
    assert rc is not None and rc.reconfigs == 1
    assert rc.state is FabricState.ACTIVE
    walk = [(frm, to) for _, frm, to, _ in rc.transitions]
    assert walk == [
        ("active", "quiescing"),
        ("quiescing", "drained"),
        ("drained", "loading"),
        ("loading", "active"),
    ]
    reasons = {reason for _, _, _, reason in rc.transitions}
    assert reasons == {"dead-component"}
    # Timestamps are nondecreasing and the reload latency is visible
    # between the LOADING and ACTIVE edges.
    times = [ts for ts, _, _, _ in rc.transitions]
    assert times == sorted(times)
    assert times[-1] - times[-2] >= campaign_recovery().reconfig_latency_cycles


def test_exhausted_budget_ends_disabled(baseline):
    # Zero headroom: every replacement arrives dead, one reload allowed.
    plan = dataclasses.replace(
        BUILTIN_PLANS["dead-component"], reconfig_dead_reloads=10
    )
    pfm = PFMParams(
        watchdog=campaign_watchdog(),
        fault_plan=plan,
        recovery=RecoveryPolicy(max_reloads=1, drain_timeout_cycles=512),
    )
    core = _run_core(pfm)
    rc = core.fabric.reconfig
    assert rc.state is FabricState.DISABLED
    assert rc.reloads_abandoned == 1
    assert rc.reconfigs == 1  # the one (dead-on-arrival) reload completed
    assert rc.transitions[-1][2] == "disabled"
    assert rc.transitions[-1][3].startswith("abandoned:")
    assert not core.fabric.enabled
    # Permanent disable is the legacy fallback: still equivalent & done.
    core._finalize()
    stats = core.stats
    assert stats.fabric_state == "disabled"
    assert stats.reloads_abandoned == 1
    assert check_equivalence(baseline, stats).ok


# ---------------------------------------------------------------------- #
# agent flush contracts (satellite: nothing leaks across a deprogram)
# ---------------------------------------------------------------------- #


def _loaded_fabric(window: int = 8_000):
    core = _run_core(PFMParams(delay=0), window=window)
    return core.fabric


def test_deprogram_drops_inflight_obs_packets():
    """In-flight ObsQ-R/ObsQ-EX packets must die with their context."""
    fabric = _loaded_fabric()
    now = 10**6
    # Park live packets in both observation queues plus a pending
    # prediction, then deprogram: every queue must be empty and every
    # drop accounted, so nothing can be observed by the next context.
    from repro.pfm.packets import ObsPacket
    from repro.pfm.snoop import SnoopKind

    fabric.obs_q.push(
        now, ObsPacket(kind=SnoopKind.DEST_VALUE, tag="t", pc=0x40, value=1.0)
    )
    fabric.fetch_agent.push(True, now, "waymap:0")
    assert fabric.obs_q.occupancy >= 1
    dropped_before = fabric.fetch_agent.packets_dropped
    fabric.deprogram(now=now + 1)
    assert fabric.obs_q.occupancy == 0
    assert fabric.intq_is.occupancy == 0
    assert fabric.retq.occupancy == 0
    assert fabric.fetch_agent.pending_count() == 0
    assert fabric.load_agent.in_flight == 0
    # The parked prediction was accounted as a drop, not delivered.
    assert fabric.fetch_agent.packets_dropped > dropped_before
    # And the disabled fabric supplies nothing afterwards.
    assert fabric.predict("waymap:0", now + 2) is None


def test_deprogram_drops_pending_squash_done_tokens():
    """Queued squash packets must not reach the next program's component."""
    fabric = _loaded_fabric()
    now = 10**6
    assert fabric.roi_active
    fabric.on_core_squash(now, "branch")
    assert fabric._pending_squashes  # token queued for the component
    fabric.deprogram(now=now + 1)
    assert fabric._pending_squashes == []
    # The component never sees a stale squash: obs_peek finds nothing.
    assert fabric.obs_peek(now + 10**6) is None


def test_fetch_agent_reset_realigns_call_counters():
    """The flush-and-realign contract for hot swaps (see FetchAgent.reset).

    Whatever call the consumer is in when the swap hits, the replacement's
    first ``new_call`` must adopt that position — a blind increment drifts
    whenever the reload window swallows a worklist snoop.
    """
    from repro.pfm.fetch_agent import FetchAgent

    agent = FetchAgent(queue_size=8, clk_ratio=4, width=4)
    for _ in range(3):
        agent.on_call_marker()
        agent.new_call()
    agent.push(True, 100, "tag")
    assert agent.consumer_call == 3 and agent.producer_call == 3
    dropped = agent.reset()
    assert dropped == 1
    assert agent.pending_count() == 0
    # Straddle case A: the consumer advances past a marker while the
    # bitstream is loading, then the fresh component starts its call.
    agent.on_call_marker()
    agent.new_call()
    assert agent.producer_call == agent.consumer_call == 4
    # Subsequent calls increment normally again.
    agent.on_call_marker()
    agent.new_call()
    assert agent.producer_call == agent.consumer_call == 5


def test_fetch_agent_reset_without_consumer_motion():
    """Straddle case B: no marker crosses the reload window."""
    from repro.pfm.fetch_agent import FetchAgent

    agent = FetchAgent(queue_size=8, clk_ratio=4, width=4)
    agent.on_call_marker()
    agent.new_call()
    agent.reset()
    # The replacement's first call realigns to the current consumer call
    # instead of running ahead (which would trip the strict invariant).
    agent.new_call()
    assert agent.producer_call == agent.consumer_call == 1
    agent.push(True, 10, "waymap:0")
    assert agent.try_pop("waymap:0", 20) == (True, 20)


def test_load_agent_reset_drops_inflight_returns():
    fabric = _loaded_fabric()
    la = fabric.load_agent
    la._pending_returns.append((10**6, object()))
    la._mlb_fills.append(10**6)
    in_flight = len(la._pending_returns)
    dropped = la.reset()
    assert dropped == in_flight >= 1
    assert la._pending_returns == []
    assert la.mlb_occupancy == 0


# ---------------------------------------------------------------------- #
# breaker backoff cap (satellite: watchdog regression)
# ---------------------------------------------------------------------- #


def test_breaker_trial_backoff_is_capped():
    """Repeated trial-window re-trips double the suppression period only
    up to ``max_override_disable_predictions`` — never beyond."""
    params = WatchdogParams(
        min_override_accuracy=0.9,
        accuracy_window=4,
        override_disable_predictions=256,
        max_override_disable_predictions=4096,
    )
    wd = Watchdog(params)

    def trip():
        for _ in range(params.accuracy_window):
            wd.record_override(correct=False)

    def drain_suppression():
        while not wd.overrides_allowed():
            wd.note_suppressed()

    periods = []
    for _ in range(8):  # 256 * 2**8 would blow far past the cap
        trip()
        assert not wd.overrides_allowed()
        periods.append(wd._suppress_remaining)
        drain_suppression()
        assert wd.breaker_trip_pending  # level-triggered flag latched
        wd.breaker_trip_pending = False
    assert periods[0] == 256
    assert max(periods) == params.max_override_disable_predictions
    assert periods == sorted(periods)  # monotone up to the cap
    # Once capped, further re-trips hold the line.
    assert periods[-1] == periods[-2] == 4096
    # A reload clears the hysteresis back to the base period.
    wd.on_reload()
    assert wd.overrides_allowed()
    trip()
    assert wd._suppress_remaining == 256


# ---------------------------------------------------------------------- #
# recovery matrix: fault plan x {no-recovery, recovery}
# ---------------------------------------------------------------------- #

#: Liveness plans where a reload provably wins IPC back within WINDOW.
RECOVERABLE_PLANS = ("dead-component", "lost-squash-done", "delayed-reconfig")


@pytest.mark.parametrize("plan_name", RECOVERABLE_PLANS)
def test_recovery_beats_no_recovery(plan_name, baseline):
    no_rec = astar_stats(recovery_pfm(plan_name, None))
    rec = astar_stats(recovery_pfm(plan_name, campaign_recovery()))
    # The fabric came back and stayed back.
    assert rec.reconfigs >= 1
    assert rec.fabric_state == "active"
    assert rec.reconfig_cycles > 0
    assert rec.drain_stall_cycles > 0
    # Strictly more IPC than detect-and-amputate alone.
    assert rec.ipc > no_rec.ipc, (
        f"{plan_name}: recovery {rec.ipc:.4f} <= no-recovery {no_rec.ipc:.4f}"
    )
    # Recovery never buys IPC with architectural state.
    assert check_equivalence(baseline, no_rec).ok
    assert check_equivalence(baseline, rec).ok


@pytest.mark.parametrize("plan_name", sorted(BUILTIN_PLANS))
def test_every_plan_equivalent_under_recovery(plan_name, baseline):
    """The oracle holds for *every* builtin plan with recovery armed."""
    stats = astar_stats(recovery_pfm(plan_name, campaign_recovery()))
    verdict = check_equivalence(baseline, stats)
    assert verdict.ok, f"{plan_name}: {verdict.reason}"


def test_delayed_reconfig_recovers_from_failed_reload(baseline):
    """Recovery-of-recovery: the first replacement is dead on arrival and
    the reload itself stalls; the second replacement sticks."""
    stats = astar_stats(recovery_pfm("delayed-reconfig", campaign_recovery()))
    assert stats.reconfigs == 2
    assert stats.fabric_state == "active"
    assert stats.reloads_abandoned == 0
    assert stats.fault_events.get("reconfig_dead_on_arrival") == 1
    assert stats.fault_events.get("reconfig_stall") == 2
    assert check_equivalence(baseline, stats).ok


def test_recovery_run_deterministic():
    pfm = recovery_pfm("delayed-reconfig", campaign_recovery())
    first = astar_stats(pfm)
    second = astar_stats(pfm)
    assert dataclasses.asdict(first) == dataclasses.asdict(second)


# ---------------------------------------------------------------------- #
# scheduled swap: architectural invisibility
# ---------------------------------------------------------------------- #


def test_scheduled_swap_is_architecturally_invisible(baseline):
    clean = astar_stats(recovery_pfm(None, None))
    swapped = astar_stats(
        recovery_pfm(None, RecoveryPolicy(scheduled_reload_at=WINDOW // 4))
    )
    assert swapped.reconfigs == 1
    assert swapped.fabric_state == "active"
    # Digest-identical to the *clean* fabric run, not just the baseline.
    assert swapped.arch_digest == clean.arch_digest == baseline.arch_digest
    assert swapped.instructions == clean.instructions
    # The swap costs cycles (it is not free) but leaks no state.
    assert swapped.ipc <= clean.ipc


# ---------------------------------------------------------------------- #
# chaos campaign: determinism across worker counts
# ---------------------------------------------------------------------- #


def test_chaos_payload_identical_across_jobs():
    _, serial = run_chaos(CHAOS_SMOKE_WINDOW, SweepPool(jobs=1))
    _, parallel = run_chaos(CHAOS_SMOKE_WINDOW, SweepPool(jobs=4))
    assert json.dumps(serial, sort_keys=True) == json.dumps(
        parallel, sort_keys=True
    )
    # The payload covers every plan twice plus clean/swap/baseline rows.
    expected = len(BUILTIN_PLANS) * 2 + 3
    assert len(serial["points"]) == expected
    assert serial["oracle_failures"] == []
    assert serial["swap_mismatches"] == []
    assert serial["points"]["astar [swap]"]["swap_invisible"] is True
