"""Prefetch workload kernels: functional semantics and delinquent loads."""

from repro.workloads.bwaves import NJ, NK, NL, build_bwaves_workload
from repro.workloads.lbm import CLUSTER, build_lbm_workload
from repro.workloads.leslie import build_leslie_workload
from repro.workloads.libquantum import NODE_STRIDE, build_libquantum_workload
from repro.workloads.milc import DIRECTIONS, build_milc_workload


def run_for(workload, n):
    executor = workload.executor()
    return list(executor.run(n)), executor


def test_libquantum_toffoli_semantics():
    control1, control2, target = 1 << 3, 1 << 7, 1 << 11
    workload = build_libquantum_workload(
        reg_size=64, control1=control1, control2=control2, target=target
    )
    # Reference: apply toffoli then sigma_x to the initial states.
    initial = [
        int(workload.memory.load_index("reg_state", 2 * i)) for i in range(64)
    ]
    _, executor = run_for(workload, 10_000)
    assert executor.halted
    for i, state in enumerate(initial):
        if state & control1 and state & control2:
            state ^= target
        state ^= target  # sigma_x flips unconditionally
        assert workload.memory.load_index("reg_state", 2 * i) == state


def test_libquantum_delinquent_load_stride():
    workload = build_libquantum_workload(reg_size=128)
    trace, _ = run_for(workload, 4000)
    loads = [d for d in trace if d.is_load and "load B" in d.comment]
    addresses = [d.mem_addr for d in loads[:20]]
    deltas = {b - a for a, b in zip(addresses, addresses[1:])}
    assert deltas == {NODE_STRIDE}


def test_lbm_cluster_loads_per_iteration():
    workload = build_lbm_workload(cells=32)
    trace, executor = run_for(workload, 5000)
    assert executor.halted
    loads = [d for d in trace if d.is_load]
    stores = [d for d in trace if d.is_store]
    assert len(loads) == 32 * CLUSTER
    assert len(stores) == 32


def test_milc_direction_streams_disjoint():
    workload = build_milc_workload(sites=16)
    trace, executor = run_for(workload, 10_000)
    assert executor.halted
    loads = [d for d in trace if d.is_load]
    assert len(loads) == 16 * DIRECTIONS * 2  # two rows per direction
    bases = [workload.memory.base(f"links_{d}") for d in range(DIRECTIONS)]
    for dyn in loads:
        assert any(
            workload.memory.contains(f"links_{d}", dyn.mem_addr)
            for d in range(DIRECTIONS)
        ), hex(dyn.mem_addr)


def test_bwaves_b_walks_plane_strides():
    workload = build_bwaves_workload(outer_sweeps=2)
    trace, _ = run_for(workload, 30_000)
    b_loads = [d for d in trace if "delinquent B" in d.comment]
    a_loads = [d for d in trace if "delinquent A" in d.comment]
    assert b_loads and a_loads
    # A is a contiguous doubleword stream.
    a_deltas = {
        y.mem_addr - x.mem_addr for x, y in zip(a_loads, a_loads[1:])
    }
    assert a_deltas == {8}
    # B jumps by whole planes (NK*NJ doublewords) within the l loop.
    plane = NK * NJ * 8
    b_deltas = [y.mem_addr - x.mem_addr for x, y in zip(b_loads[:NL], b_loads[1:NL])]
    assert all(delta == plane for delta in b_deltas)


def test_bwaves_component_coeffs_reproduce_addresses():
    """The bitstream's coefficient vectors must match the kernel."""
    workload = build_bwaves_workload(outer_sweeps=2)
    group = workload.bitstream.metadata["groups"][0]
    site_a = next(s for s in group["sites"] if s["tag"] == "A")
    site_b = next(s for s in group["sites"] if s["tag"] == "B")
    trace, _ = run_for(workload, 90_000)
    a_loads = [d for d in trace if "delinquent A" in d.comment]
    b_loads = [d for d in trace if "delinquent B" in d.comment]
    a_base = workload.memory.base("A")
    b_base = workload.memory.base("B")

    def nest_counters(flat):
        l = flat % NL
        k = (flat // NL) % NK
        j = (flat // (NL * NK)) % NJ
        i = flat // (NL * NK * NJ)
        return (i, j, k, l)

    for flat in (0, 1, 7, NL * NK + 3, NL * NK * NJ + 11):
        counters = nest_counters(flat)
        expected_a = a_base + sum(
            c * v for c, v in zip(site_a["coeffs"], counters)
        )
        expected_b = b_base + sum(
            c * v for c, v in zip(site_b["coeffs"], counters)
        )
        assert a_loads[flat].mem_addr == expected_a
        assert b_loads[flat].mem_addr == expected_b


def test_leslie_three_rois_execute():
    workload = build_leslie_workload(outer_sweeps=2)
    trace, _ = run_for(workload, 80_000)
    r1 = [d for d in trace if "r1 stream load" in d.comment]
    r2 = [d for d in trace if "r2 stream load" in d.comment]
    r3 = [d for d in trace if "r3 strided load" in d.comment]
    assert r1 and r2 and r3
    # r3 strides one cache line per iteration.
    deltas = {y.mem_addr - x.mem_addr for x, y in zip(r3[:10], r3[1:10])}
    assert deltas == {64}


def test_leslie_coeffs_reproduce_r1b():
    workload = build_leslie_workload(outer_sweeps=2)
    from repro.workloads.leslie import R1_NJ, R1_NK

    trace, _ = run_for(workload, 80_000)
    r1b = [d for d in trace if "r1 transposed load" in d.comment]
    base = workload.memory.base("flux_aux")
    group = workload.bitstream.metadata["groups"][0]
    site = next(s for s in group["sites"] if s["tag"] == "r1b")
    # flat order is (t, j, k): reconstruct counters for sampled positions.
    for flat in (0, 1, R1_NK + 5, R1_NK * R1_NJ + 2):
        k = flat % R1_NK
        j = (flat // R1_NK) % R1_NJ
        t = flat // (R1_NK * R1_NJ)
        expected = base + sum(
            c * v for c, v in zip(site["coeffs"], (t, j, k))
        )
        assert r1b[flat].mem_addr == expected


def test_all_prefetch_bitstreams_have_roi_and_bases():
    from repro.pfm.snoop import SnoopKind

    for build in (
        build_libquantum_workload,
        build_lbm_workload,
        build_milc_workload,
        build_bwaves_workload,
        build_leslie_workload,
    ):
        workload = build()
        kinds = [e.kind for e in workload.bitstream.rst_entries]
        assert SnoopKind.ROI_BEGIN in kinds
        assert not workload.bitstream.fst_entries  # prefetch-only
        tags = {e.tag for e in workload.bitstream.rst_entries}
        assert any(t.startswith("base:") for t in tags)
        assert any(t.startswith("iter:") for t in tags)
