"""Memory image: allocation, lazy storage, access checking."""

import pytest
from hypothesis import given, strategies as st

from repro.workloads.mem import WORD_BYTES, MemoryImage


def test_allocation_is_aligned_and_disjoint():
    memory = MemoryImage()
    a = memory.allocate("a", 10)
    b = memory.allocate("b", 10)
    assert a % 64 == 0 and b % 64 == 0
    assert b >= a + 10 * WORD_BYTES


def test_duplicate_region_rejected():
    memory = MemoryImage()
    memory.allocate("a", 4)
    with pytest.raises(ValueError):
        memory.allocate("a", 4)


def test_empty_region_rejected():
    with pytest.raises(ValueError):
        MemoryImage().allocate("a", 0)


def test_untouched_words_read_zero():
    memory = MemoryImage()
    base = memory.allocate("a", 1000)
    assert memory.load(base + 512 * WORD_BYTES) == 0
    assert memory.touched_words() == 0  # lazily materialized


def test_store_load_roundtrip():
    memory = MemoryImage()
    base = memory.allocate("a", 4)
    memory.store(base + 8, 42)
    assert memory.load(base + 8) == 42
    assert memory.touched_words() == 1


def test_misaligned_access_rejected():
    memory = MemoryImage()
    base = memory.allocate("a", 4)
    with pytest.raises(ValueError):
        memory.load(base + 3)
    with pytest.raises(ValueError):
        memory.store(base + 5, 1)


def test_indexed_helpers():
    memory = MemoryImage()
    memory.allocate("a", 8)
    memory.store_index("a", 3, 7)
    assert memory.load_index("a", 3) == 7
    assert memory.load_index("a", 2) == 0


def test_store_array_allocates_and_fills():
    memory = MemoryImage()
    base = memory.store_array("data", [5, 6, 7])
    assert memory.base("data") == base
    assert [memory.load_index("data", i) for i in range(3)] == [5, 6, 7]
    assert memory.size_words("data") == 3


def test_contains():
    memory = MemoryImage()
    base = memory.allocate("a", 4)
    assert memory.contains("a", base)
    assert memory.contains("a", base + 3 * WORD_BYTES)
    assert not memory.contains("a", base + 4 * WORD_BYTES)


@given(
    st.dictionaries(
        st.integers(min_value=0, max_value=500),
        st.integers(min_value=-(2**40), max_value=2**40),
        max_size=50,
    )
)
def test_property_roundtrip_many_words(values):
    """Stores are independent per word and reads reproduce them exactly."""
    memory = MemoryImage()
    base = memory.allocate("region", 501)
    for index, value in values.items():
        memory.store(base + index * WORD_BYTES, value)
    for index in range(501):
        expected = values.get(index, 0)
        assert memory.load(base + index * WORD_BYTES) == expected
