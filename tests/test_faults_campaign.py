"""The ``faults`` experiment campaign and its CLI wiring."""

from __future__ import annotations

import json

import pytest

from repro.experiments import faults as faults_module
from repro.experiments.__main__ import main
from repro.experiments.faults import (
    FAULT_WORKLOADS,
    OracleViolation,
    fault_points,
    run_faults,
)
from repro.experiments.pool import SweepPool
from repro.experiments.sweep import payload_json
from repro.faults import BUILTIN_PLANS, OracleVerdict

WINDOW = 1_200
WORKLOADS = ("astar",)


@pytest.fixture(scope="module")
def campaign():
    return run_faults(WINDOW, SweepPool(), workloads=WORKLOADS)


def test_grid_shape():
    points = fault_points(WINDOW, WORKLOADS)
    # baseline + clean + one per plan, per workload
    assert len(points) == len(WORKLOADS) * (2 + len(BUILTIN_PLANS))
    labels = {p.label for p in points}
    assert "baseline:astar" in labels
    assert "astar [clean]" in labels
    assert "astar [fault:chaos]" in labels
    assert len(labels) == len(points)


def test_campaign_workloads_cover_both_component_families():
    # astar/bfs-roads exercise branch prediction (squashes, overrides);
    # libquantum exercises the prefetch path with no FST predictions.
    assert "astar" in FAULT_WORKLOADS
    assert "libquantum" in FAULT_WORKLOADS


def test_all_points_pass_oracle(campaign):
    _, payload = campaign
    checked = {
        label: entry
        for label, entry in payload["points"].items()
        if not label.startswith("baseline:")
    }
    assert len(checked) == 1 + len(BUILTIN_PLANS)
    assert all(entry["oracle_ok"] for entry in checked.values())
    assert payload["oracle_failures"] == []


def test_payload_carries_digests_and_watchdog(campaign):
    _, payload = campaign
    digests = {
        entry["arch_digest"] for entry in payload["points"].values()
    }
    assert digests == {payload["points"]["baseline:astar"]["arch_digest"]}
    assert payload["watchdog"]["fetch_timeout_cycles"] == 256
    assert payload["plans"] == sorted(BUILTIN_PLANS)


def test_result_rows_report_degradation(campaign):
    result, _ = campaign
    assert len(result.rows) == 1 + len(BUILTIN_PLANS)
    for label, value in result.rows:
        assert value > 0, f"{label} reported non-positive relative IPC"
    assert "oracle" in result.notes


def test_payload_json_deterministic(campaign):
    _, payload = campaign
    rerun_result, rerun_payload = run_faults(
        WINDOW, SweepPool(), workloads=WORKLOADS
    )
    assert payload_json(rerun_payload) == payload_json(payload)
    assert rerun_result.rows == campaign[0].rows


def test_oracle_violation_aborts_campaign(monkeypatch):
    def always_fail(baseline, faulted):
        return OracleVerdict(
            ok=False, reason="forced", baseline_digest="a", faulted_digest="b"
        )

    monkeypatch.setattr(faults_module, "check_equivalence", always_fail)
    with pytest.raises(OracleViolation, match="forced"):
        run_faults(WINDOW, SweepPool(), workloads=WORKLOADS)


# ---------------------------------------------------------------------- #
# CLI wiring
# ---------------------------------------------------------------------- #


def test_cli_smoke_rejects_non_payload_experiments(capsys):
    with pytest.raises(SystemExit):
        main(["fig8", "--smoke"])


def test_cli_faults_smoke_writes_json(tmp_path, capsys):
    out = tmp_path / "faults.json"
    code = main(
        [
            "faults",
            "--smoke",
            "--window",
            "600",
            "--no-cache",
            "--json",
            str(out),
        ]
    )
    assert code == 0
    payload = json.loads(out.read_text())
    assert payload["window"] == 600
    assert payload["oracle_failures"] == []
    assert set(payload["workloads"]) == set(FAULT_WORKLOADS)
    rendered = capsys.readouterr().out
    assert "Faults" in rendered
    assert "fault:dead-component" in rendered
