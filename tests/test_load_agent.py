"""Load Agent: lane arbitration, MLB replay, out-of-order returns."""

from repro.core.params import CoreParams
from repro.core.resources import LaneScheduler
from repro.memory.hierarchy import HierarchyParams, MemoryHierarchy
from repro.pfm.load_agent import LoadAgent
from repro.pfm.packets import LoadPacket
from repro.pfm.queues import TimedQueue
from repro.workloads.mem import MemoryImage


def make_agent(mlb_entries=64, replay_period=8, warm_lines=(), retq_capacity=32):
    params = CoreParams()
    lanes = LaneScheduler(params.num_lanes, params.issue_width)
    hierarchy = MemoryHierarchy(
        HierarchyParams(
            tlb_walk_latency=0, enable_l1_prefetcher=False, enable_vldp=False
        )
    )
    memory = MemoryImage()
    memory.allocate("data", 1 << 16)
    for line in warm_lines:
        hierarchy.l1d.insert(line, now=0, fill_time=0)
    intq = TimedQueue("IntQ-IS", 32)
    retq = TimedQueue("ObsQ-EX", retq_capacity)
    agent = LoadAgent(
        intq, retq, hierarchy, memory, lanes, params.ls_lanes(),
        mlb_entries=mlb_entries, replay_period=replay_period,
    )
    return agent, intq, retq, memory, hierarchy


def test_load_returns_value_from_memory():
    agent, intq, retq, memory, _ = make_agent()
    base = memory.base("data")
    memory.store(base + 16, 42)
    warm_line = (base + 16) >> 6
    agent._hierarchy.l1d.insert(warm_line, now=0, fill_time=0)
    intq.push(10, LoadPacket(ident=7, address=base + 16))
    agent.tick(500)
    ret = retq.pop(10_000)
    assert ret.ident == 7
    assert ret.value == 42


def test_prefetch_produces_no_return():
    agent, intq, retq, memory, _ = make_agent()
    intq.push(10, LoadPacket(ident=1, address=memory.base("data"), is_prefetch=True))
    agent.tick(500)
    assert agent.prefetches_issued == 1
    assert retq.occupancy == 0


def test_missed_load_quantized_to_replay_period():
    agent, intq, retq, memory, _ = make_agent(replay_period=8)
    intq.push(10, LoadPacket(ident=2, address=memory.base("data")))
    agent.tick(100)
    assert agent.load_misses == 1
    assert agent.replays >= 1
    (ready, ret), = agent._pending_returns or [(None, None)] if False else [
        (r, x) for r, x in agent._pending_returns
    ]
    # Ready time is issue + ceil(miss/period)*period + 1: period-aligned.
    assert (ready - 1) % 8 in (0, 1, 2, 3, 4, 5, 6, 7)  # sanity
    assert ready > 100


def test_hit_returns_fast_miss_returns_slow():
    agent, intq, retq, memory, hierarchy = make_agent()
    base = memory.base("data")
    hierarchy.l1d.insert(base >> 6, now=0, fill_time=0)
    intq.push(10, LoadPacket(ident=1, address=base))  # hit
    intq.push(10, LoadPacket(ident=2, address=base + 8192))  # miss
    agent.tick(50)
    agent.tick(5000)
    first = retq.pop(10_000)
    second = retq.pop(10_000)
    assert first.ident == 1  # the hit came back first (out-of-order ok)
    assert second.ident == 2


def test_returns_blocked_by_full_obsq():
    agent, intq, retq, memory, hierarchy = make_agent(retq_capacity=8)
    base = memory.base("data")
    for i in range(20):
        hierarchy.l1d.insert((base + i * 64) >> 6, now=0, fill_time=0)
        intq.push(10, LoadPacket(ident=i, address=base + i * 64))
    agent.tick(5000)
    # ObsQ-EX capacity 8: the rest wait in the agent.
    assert retq.occupancy == 8
    assert agent.in_flight > 0
    retq.drain(10_000)
    agent.tick(6000)
    assert retq.occupancy > 0  # drained returns pushed afterwards


def test_mlb_capacity_delays_excess_misses():
    agent, intq, retq, memory, _ = make_agent(mlb_entries=2)
    base = memory.base("data")
    for i in range(4):
        intq.push(10, LoadPacket(ident=i, address=base + i * 4096))
    agent.tick(100)
    readies = sorted(r for r, _ in agent._pending_returns)
    assert len(readies) == 4
    # With only 2 MLB entries the 3rd/4th miss cannot even be accepted
    # until an earlier fill drains: their completion is strictly after
    # the first fill.
    assert readies[2] > readies[0]
    assert readies[3] > readies[1]
    assert agent.load_misses == 4


def test_next_event_time_reports_pending_work():
    agent, intq, retq, memory, _ = make_agent()
    assert agent.next_event_time() is None
    intq.push(10, LoadPacket(ident=1, address=memory.base("data")))
    assert agent.next_event_time() == 10
    agent.tick(100)
    assert agent.next_event_time() is not None  # pending return


def test_lane_slots_consumed():
    agent, intq, retq, memory, _ = make_agent()
    lanes = agent._lanes
    base = memory.base("data")
    intq.push(10, LoadPacket(ident=1, address=base))
    agent.tick(50)
    ls_lane = CoreParams().ls_lanes()
    assert any(
        not lanes.is_lane_free(lane, cycle)
        for lane in ls_lane
        for cycle in range(10, 15)
    )
