"""The command-line simulation driver and context-isolation API."""

import pytest

from repro.core import PFMParams, SimConfig, SuperscalarCore
from repro.sim import main
from repro.workloads.astar import build_astar_workload


def test_cli_baseline_run(capsys):
    assert main(["--workload", "libquantum", "--window", "4000"]) == 0
    out = capsys.readouterr().out
    assert "IPC" in out
    assert "libquantum" in out


def test_cli_pfm_notation(capsys):
    assert main([
        "--workload", "libquantum", "--window", "4000",
        "--pfm", "clk4_w1, delay0",
    ]) == 0
    out = capsys.readouterr().out
    assert "clk4_w1" in out


def test_cli_report_sections(capsys):
    assert main([
        "--workload", "astar", "--window", "5000",
        "--pfm", "clk4_w4", "--report",
    ]) == 0
    out = capsys.readouterr().out
    assert "memory hierarchy" in out
    assert "load agent" in out
    assert "core energy" in out


def test_cli_compare(capsys):
    assert main([
        "--workload", "libquantum", "--window", "4000", "--compare",
    ]) == 0
    out = capsys.readouterr().out
    assert "baseline IPC" in out


def test_cli_compare_parallel_matches_serial(capsys):
    args = ["--workload", "libquantum", "--window", "4000",
            "--pfm", "clk4_w1, delay0", "--compare"]
    assert main(args) == 0
    serial = capsys.readouterr().out
    assert main(args + ["--jobs", "2"]) == 0
    parallel = capsys.readouterr().out
    # identical stats; only the wall-clock line may differ
    strip = lambda text: [line for line in text.splitlines()
                          if "wall clock" not in line]
    assert strip(serial) == strip(parallel)


def test_cli_astar_alt_workload(capsys):
    assert main(["--workload", "astar-alt", "--window", "3000"]) == 0
    out = capsys.readouterr().out
    assert "IPC" in out


def test_cli_unknown_workload_rejected():
    with pytest.raises(SystemExit):
        main(["--workload", "crysis"])


def test_cli_perfect_modes(capsys):
    assert main([
        "--workload", "astar", "--window", "4000", "--perfect-bp",
    ]) == 0
    out = capsys.readouterr().out
    assert "mispredicted 0" in out


# ---------------------------------------------------------------------- #
# context isolation (Section 2.4)
# ---------------------------------------------------------------------- #

def test_deprogram_flushes_and_disables():
    core = SuperscalarCore(
        build_astar_workload(grid_width=128, grid_height=128),
        SimConfig(max_instructions=8000, pfm=PFMParams(delay=0)),
    )
    core.run()
    fabric = core.fabric
    assert fabric.enabled and fabric.roi_active
    fabric.deprogram(now=10**6)
    assert not fabric.enabled
    assert not fabric.roi_active
    assert fabric.obs_q.occupancy == 0
    assert fabric.intq_is.occupancy == 0
    assert fabric.fetch_agent.pending_count() == 0
    # Disabled fabric supplies nothing.
    assert fabric.predict("waymap:0", 10**6 + 1) is None


def test_reprogram_builds_fresh_component():
    core = SuperscalarCore(
        build_astar_workload(grid_width=128, grid_height=128),
        SimConfig(max_instructions=8000, pfm=PFMParams(delay=0)),
    )
    core.run()
    fabric = core.fabric
    old_component = fabric.component
    fabric.deprogram(now=10**6)
    fabric.reprogram(now=10**6 + 100)
    assert fabric.enabled
    assert fabric.component is not old_component  # no state survives
    assert not fabric.roi_active  # must re-enter the ROI
