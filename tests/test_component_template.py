"""Templated run-ahead predictor generation (Section 7's future work)."""

import pytest

from repro.core import PFMParams, SimConfig, simulate
from repro.pfm.components.template import (
    GuardedCheck,
    TemplatedRunaheadPredictor,
    TemplateSpec,
    astar_template_spec,
    make_astar_template_factory,
)
from repro.workloads.astar import build_astar_workload

WINDOW = 15_000


def grid_kwargs():
    return dict(grid_width=128, grid_height=128)


def test_astar_spec_shape():
    spec = astar_template_spec()
    assert spec.fanout == 8
    assert len(spec.checks) == 2
    assert spec.checks[0].name == "waymap"
    assert spec.infer_stores


def test_spec_derive_uses_snooped_scalars():
    spec = astar_template_spec()
    indices = spec.derive(100, {"yoffset": 10, "fillnum": 0})
    assert indices == [89, 90, 91, 99, 101, 109, 110, 111]


def test_template_matches_hand_written_design():
    """The generated component reproduces the hand-written astar design's
    accuracy and speedup — the paper's 'path toward automation'."""
    baseline = simulate(
        build_astar_workload(**grid_kwargs()),
        SimConfig(max_instructions=WINDOW),
    )
    hand = simulate(
        build_astar_workload(**grid_kwargs()),
        SimConfig(max_instructions=WINDOW, pfm=PFMParams(delay=0)),
    )
    generated = simulate(
        build_astar_workload(
            component_factory=make_astar_template_factory(), **grid_kwargs()
        ),
        SimConfig(max_instructions=WINDOW, pfm=PFMParams(delay=0)),
    )
    assert generated.ipc > baseline.ipc * 1.5
    assert abs(generated.ipc - hand.ipc) / hand.ipc < 0.1
    assert abs(generated.mpki - hand.mpki) < 2.0


def test_template_respects_scope_override():
    small = simulate(
        build_astar_workload(
            component_factory=make_astar_template_factory(), **grid_kwargs()
        ),
        SimConfig(
            max_instructions=WINDOW,
            pfm=PFMParams(
                delay=0, component_overrides={"index_queue_entries": 1}
            ),
        ),
    )
    full = simulate(
        build_astar_workload(
            component_factory=make_astar_template_factory(), **grid_kwargs()
        ),
        SimConfig(max_instructions=WINDOW, pfm=PFMParams(delay=0)),
    )
    assert full.ipc > small.ipc * 1.2


def test_template_store_inference_can_be_disabled():
    spec = astar_template_spec()
    no_infer = TemplateSpec(
        worklist_base_tag=spec.worklist_base_tag,
        head_counter_tag=spec.head_counter_tag,
        scalar_tags=spec.scalar_tags,
        roi_value_name=spec.roi_value_name,
        derive=spec.derive,
        checks=spec.checks,
        infer_stores=False,
        scope=spec.scope,
    )

    def factory(timings, memory, metadata=None):
        merged = dict(metadata or {})
        merged["spec"] = no_infer
        return TemplatedRunaheadPredictor(timings, memory, merged)

    with_infer = simulate(
        build_astar_workload(
            component_factory=make_astar_template_factory(), **grid_kwargs()
        ),
        SimConfig(max_instructions=WINDOW, pfm=PFMParams(delay=0)),
    )
    without = simulate(
        build_astar_workload(component_factory=factory, **grid_kwargs()),
        SimConfig(max_instructions=WINDOW, pfm=PFMParams(delay=0)),
    )
    # The loop-carried dependency bites without inference.
    assert without.mpki > with_infer.mpki * 1.5


def test_template_structure_scales_with_spec():
    spec = astar_template_spec(scope=8)
    component = TemplatedRunaheadPredictor(
        __import__("repro.pfm.component", fromlist=["RFTimings"]).RFTimings(4, 4, 0),
        None,
        {"spec": spec},
    )
    structure = component.structure()
    assert structure["cam_bits"] > 0
    assert structure["queue_bits"] > 0


def test_custom_single_check_spec():
    """A one-check spec (flag-walk style) works through the template."""
    check = GuardedCheck(
        name="flag",
        base_tag="flags_base",
        stride=8,
        predicate=lambda value, env: int(value) == 0,
        fst_tag="flag:{k}",
    )
    spec = TemplateSpec(
        worklist_base_tag="worklist_base",
        head_counter_tag="iter_inc",
        scalar_tags=(),
        roi_value_name="roi",
        derive=lambda item, env: [item],
        checks=(check,),
        infer_stores=False,
    )
    assert spec.fanout == 1
    component = TemplatedRunaheadPredictor(
        __import__("repro.pfm.component", fromlist=["RFTimings"]).RFTimings(4, 1, 0),
        None,
        {"spec": spec},
    )
    assert component.is_idle()
