"""Property-based tests for the Fetch Agent's alignment machinery."""

from hypothesis import given, settings, strategies as st

from repro.pfm.fetch_agent import FetchAgent

TAGS = ["a", "b", "c"]


@given(
    st.lists(
        st.tuples(st.sampled_from(TAGS), st.booleans()),
        min_size=1,
        max_size=60,
    ),
    st.data(),
)
@settings(max_examples=80, deadline=None)
def test_pop_never_returns_wrong_tag_value(stream, data):
    """With a producer stream in program order and a consumer popping a
    subsequence of it (skipped branches are legal), every popped value
    must equal the produced value for that instance."""
    agent = FetchAgent(queue_size=256, clk_ratio=4, width=4)
    for i, (tag, taken) in enumerate(stream):
        assert agent.push(taken, ready=i, tag=tag)
    # The consumer visits a monotone subsequence of the stream.
    indices = sorted(
        data.draw(
            st.sets(
                st.integers(0, len(stream) - 1),
                min_size=1,
                max_size=len(stream),
            )
        )
    )
    cursor = 0
    for index in indices:
        tag, taken = stream[index]
        # Dropping everything before `index` is only legal if no earlier
        # *matching* tag remains undropped; the real system guarantees it
        # because skipped packets correspond to skipped branches.  Emulate
        # by only popping when `index` is the next matching instance.
        remaining = [t for t, _ in stream[cursor:index]]
        if tag in remaining:
            continue  # would be ambiguous; the core never does this
        result = agent.try_pop(tag, fetch_time=10_000)
        if result is None:
            continue
        popped_taken, effective = result
        assert popped_taken == taken, (index, tag)
        assert effective >= 10_000
        cursor = index + 1


@given(st.integers(1, 64), st.integers(1, 8))
@settings(max_examples=40, deadline=None)
def test_occupancy_never_exceeds_queue_size(queue_size, width):
    agent = FetchAgent(queue_size=queue_size, clk_ratio=4, width=width)
    pushed = 0
    for i in range(queue_size * 3):
        if agent.push(True, ready=0, tag="x"):
            pushed += 1
    assert pushed == queue_size
    assert agent.occupancy_at(10) == queue_size


@given(st.lists(st.integers(0, 100), min_size=1, max_size=40))
@settings(max_examples=40, deadline=None)
def test_squash_refloor_is_monotone_per_group(readies):
    """After a squash, replayed ready times never decrease and respect
    the W-per-RF-cycle pacing."""
    width = 2
    clk = 4
    agent = FetchAgent(queue_size=256, clk_ratio=clk, width=width)
    for i, ready in enumerate(sorted(readies)):
        agent.push(True, ready=ready, tag=f"t{i}")
    agent.apply_squash(squash_done=1000)
    previous = 0
    for i in range(len(readies)):
        result = agent.try_pop(f"t{i}", fetch_time=0)
        assert result is not None
        _, effective = result
        assert effective >= previous
        assert effective >= 1000 + clk  # nothing replays before the sync
        previous = effective
