"""Tests for the resident simulation service (repro.service).

Covers the wire models, the durable job store, the bounded priority
queue, and — against a real daemon running on a background event loop —
the issue's contract tests: client-fetched results byte-identical to
direct SweepPool output for every request kind, admission-control
rejections with concrete reasons, priority-ordered dispatch, and
drain-preserves-queued-jobs across a daemon restart.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import threading

import pytest

from repro.experiments.pool import SweepPool
from repro.service.client import ServiceClient, ServiceError
from repro.service.handlers import SimulateHandler, SweepHandler, TraceHandler
from repro.service.jobs import AdmissionError, JobQueue, JobStore, append_jsonl
from repro.service.models import (
    CANCELLED,
    DONE,
    QUEUED,
    RUNNING,
    JobRecord,
    RequestError,
    SimulateRequest,
    SweepRequest,
    TraceRequest,
    job_id_for,
)
from repro.service.server import (
    ServiceConfig,
    SimulationService,
    endpoint_path,
    jobs_dir,
)

#: Small enough to keep real simulations fast, large enough to be real.
WINDOW = 1_200
CONFIG = "clk4_w1, delay0"


def _job(seq: int, priority: int = 0, state: str = QUEUED) -> JobRecord:
    return JobRecord(
        id=job_id_for(seq),
        kind="simulate",
        priority=priority,
        seq=seq,
        request={"workload": "astar", "window": WINDOW},
        state=state,
    )


# --------------------------------------------------------------------- #
# wire models
# --------------------------------------------------------------------- #


def test_request_wire_round_trips():
    for request in (
        SimulateRequest("astar", window=WINDOW, config=CONFIG, jobs=2),
        SweepRequest(window=WINDOW, workloads=("astar", "lbm"), configs=(CONFIG,)),
        TraceRequest(target="astar", window=WINDOW, ring=128, sample_period=8),
    ):
        assert type(request).from_wire(request.to_wire()) == request


def test_request_validation_names_the_bad_field():
    with pytest.raises(RequestError, match="'workload'"):
        SimulateRequest.from_wire({})
    with pytest.raises(RequestError, match="'window'"):
        SimulateRequest.from_wire({"workload": "astar", "window": "big"})
    with pytest.raises(RequestError, match="'jobs'"):
        SimulateRequest.from_wire({"workload": "astar", "jobs": True})
    with pytest.raises(RequestError, match="'overrides'"):
        SimulateRequest.from_wire({"workload": "astar", "overrides": [1]})
    with pytest.raises(RequestError, match="'workloads'"):
        SweepRequest.from_wire({"workloads": [1, 2]})
    with pytest.raises(RequestError, match="'sample_period'"):
        TraceRequest.from_wire({"sample_period": -1})


def test_sweep_request_accepts_comma_lists():
    request = SweepRequest.from_wire({"workloads": "astar,lbm"})
    assert request.workloads == ("astar", "lbm")


def test_job_record_round_trip_and_status_payload():
    job = _job(7, priority=3)
    assert JobRecord.from_wire(job.to_wire()) == job
    assert job.status_payload()["terminal"] is False
    job.state = DONE
    assert job.status_payload()["terminal"] is True
    with pytest.raises(RequestError, match="unknown job state"):
        JobRecord.from_wire({**job.to_wire(), "state": "paused"})


# --------------------------------------------------------------------- #
# job store (durable journal)
# --------------------------------------------------------------------- #


def test_job_store_last_snapshot_wins(tmp_path):
    store = JobStore(tmp_path / "jobs")
    job = _job(1)
    store.record(job)
    job.state = RUNNING
    store.record(job)
    job.state = DONE
    store.record(job)
    loaded = store.load()
    assert loaded[job.id].state == DONE
    assert store.resumable() == []
    assert store.next_seq() == 2


def test_job_store_skips_torn_trailing_line(tmp_path):
    store = JobStore(tmp_path / "jobs")
    store.record(_job(1))
    half = json.dumps(_job(2).to_wire())
    with store.journal.open("a") as handle:
        handle.write(half[: len(half) // 2])  # killed mid-append
    loaded = store.load()
    assert set(loaded) == {job_id_for(1)}


def test_job_store_resumes_queued_and_running_in_admission_order(tmp_path):
    store = JobStore(tmp_path / "jobs")
    store.record(_job(3, state=RUNNING))
    store.record(_job(1, state=DONE))
    store.record(_job(2, state=QUEUED))
    assert [job.seq for job in store.resumable()] == [2, 3]


def test_job_store_size_and_clear(tmp_path):
    store = JobStore(tmp_path / "jobs")
    store.record(_job(1))
    store.write_result(job_id_for(1), "{}\n")
    append_jsonl(store.checkpoint_path(job_id_for(1)), {"key": "k"})
    files, total = store.size()
    assert files == 3 and total > 0
    removed, freed = store.clear()
    assert removed == 3 and freed == total
    assert store.size() == (0, 0)


# --------------------------------------------------------------------- #
# bounded priority queue
# --------------------------------------------------------------------- #


def test_queue_priority_then_fifo_order():
    queue = JobQueue(max_depth=8)
    for seq, priority in ((1, 0), (2, 5), (3, 0), (4, 5)):
        queue.admit(_job(seq, priority))
    assert [queue.pop().seq for _ in range(4)] == [2, 4, 1, 3]


def test_queue_admission_bound_and_requeue_bypass():
    queue = JobQueue(max_depth=2)
    queue.admit(_job(1))
    queue.admit(_job(2))
    with pytest.raises(AdmissionError, match="queue full"):
        queue.admit(_job(3))
    queue.requeue(_job(3))  # journal-resumed jobs are never dropped
    assert len(queue) == 3


def test_queue_remove_for_cancel():
    queue = JobQueue(max_depth=4)
    queue.admit(_job(1))
    queue.admit(_job(2))
    assert queue.remove(job_id_for(1)).seq == 1
    assert queue.remove("job-xxxxxx") is None
    assert [job.seq for job in queue.snapshot()] == [2]


# --------------------------------------------------------------------- #
# live daemon harness
# --------------------------------------------------------------------- #


@contextlib.contextmanager
def running_service(cache_dir, **overrides):
    """A real daemon on a background event loop plus a connected client."""
    config = ServiceConfig(cache_dir=cache_dir, **overrides)
    started = threading.Event()
    box: dict = {}

    async def _main():
        service = SimulationService(config)
        await service.start()
        box["service"] = service
        box["loop"] = asyncio.get_running_loop()
        started.set()
        await service.serve_until_shutdown()

    thread = threading.Thread(target=lambda: asyncio.run(_main()), daemon=True)
    thread.start()
    assert started.wait(30), "daemon failed to start"
    service = box["service"]
    try:
        yield service, ServiceClient(cache_dir=cache_dir)
    finally:
        box["loop"].call_soon_threadsafe(service.request_shutdown)
        thread.join(60)
        assert not thread.is_alive(), "daemon failed to drain"


# --------------------------------------------------------------------- #
# round-trip byte equality vs direct SweepPool (the core contract)
# --------------------------------------------------------------------- #


def test_round_trip_bytes_identical_to_direct_pool(tmp_path):
    """For every request kind, the bytes fetched from the daemon equal
    the text produced by running the same request through a direct,
    unshared SweepPool."""
    requests = [
        (SimulateHandler, SimulateRequest("astar", window=WINDOW, config=CONFIG)),
        (SweepHandler, SweepRequest(window=WINDOW, workloads=("astar",),
                                    configs=(CONFIG,))),
        (TraceHandler, TraceRequest(target="astar", window=WINDOW,
                                    ring=4096, sample_period=64)),
    ]
    direct = {
        handler.kind: handler.run(request, SweepPool())[0].encode()
        for handler, request in requests
    }
    with running_service(tmp_path / "cache") as (service, client):
        for handler, request in requests:
            served = client.run(handler.kind, request.to_wire(), timeout=120)
            assert served == direct[handler.kind], handler.kind


def test_second_identical_request_is_warm_and_identical(tmp_path):
    request = SweepRequest(window=WINDOW, workloads=("astar",), configs=(CONFIG,))
    with running_service(tmp_path / "cache") as (service, client):
        first = client.run("sweep", request.to_wire(), timeout=120)
        second = client.run("sweep", request.to_wire(), timeout=120)
        assert first == second
        cache = client.stats()["cache"]
        # The warm request was served entirely from the shared memo.
        assert cache["pool"]["cached"] >= cache["pool"]["computed"]
        assert cache["baseline_memory_entries"] >= 1


# --------------------------------------------------------------------- #
# admission control, priority, cancel (hold mode: nothing dispatches)
# --------------------------------------------------------------------- #


def test_submit_rejections_name_the_reason(tmp_path):
    with running_service(
        tmp_path / "cache", max_queue=1, worker_budget=1, hold=True
    ) as (service, client):
        client.submit("simulate", {"workload": "astar", "window": WINDOW})
        # distinct request: an identical one would coalesce, not reject
        with pytest.raises(ServiceError, match="queue full") as excinfo:
            client.submit("simulate", {"workload": "milc", "window": WINDOW})
        assert excinfo.value.status == 429
        with pytest.raises(ServiceError, match="worker budget") as excinfo:
            client.submit("simulate", {"workload": "lbm", "jobs": 64})
        assert excinfo.value.status == 429
        with pytest.raises(ServiceError, match="unknown workload"):
            client.submit("simulate", {"workload": "nope"})
        with pytest.raises(ServiceError, match="kind"):
            client.submit("teleport", {})
        with pytest.raises(ServiceError, match="'window'"):
            client.submit("simulate", {"workload": "astar", "window": -3})
        assert client.stats()["counters"]["requests_rejected"] == 5


def test_priority_orders_dispatch_and_cancel_is_queued_only(tmp_path):
    with running_service(tmp_path / "cache", hold=True) as (service, client):
        low = client.submit("simulate",
                            {"workload": "astar", "window": WINDOW})["job_id"]
        high = client.submit("simulate",
                             {"workload": "lbm", "window": WINDOW},
                             priority=9)["job_id"]
        mid = client.submit("simulate",
                            {"workload": "milc", "window": WINDOW},
                            priority=4)["job_id"]
        order = [job.id for job in service.queue.snapshot()]
        assert order == [high, mid, low]

        cancelled = client.cancel(mid)
        assert cancelled["state"] == CANCELLED
        with pytest.raises(ServiceError) as excinfo:
            client.cancel(mid)  # already cancelled: 409, not double-cancel
        assert excinfo.value.status == 409
        with pytest.raises(ServiceError) as excinfo:
            client.result(mid)
        assert excinfo.value.status == 409
        with pytest.raises(ServiceError) as excinfo:
            client.status("job-999999")
        assert excinfo.value.status == 404
        assert [job.id for job in service.queue.snapshot()] == [high, low]


def test_failed_job_reports_error_through_status(tmp_path):
    with running_service(tmp_path / "cache") as (service, client):
        # Valid at admission, fails in the worker: window beyond the
        # workload's trace is fine, but an unknown override key is not.
        job_id = client.submit(
            "simulate",
            {"workload": "astar", "window": WINDOW,
             "overrides": {"no_such_knob": 1}},
        )["job_id"]
        status = client.wait(job_id, timeout=60)
        assert status["state"] == "failed"
        assert status["error"]
        with pytest.raises(ServiceError) as excinfo:
            client.result(job_id)
        assert excinfo.value.status == 409


# --------------------------------------------------------------------- #
# request coalescing (identical queued requests share one run)
# --------------------------------------------------------------------- #


def _release(service):
    """Leave hold mode from the test thread (the daemon owns the loop)."""
    loop = service._dispatcher.get_loop()
    asyncio.run_coroutine_threadsafe(service.release(), loop).result(10)


def test_identical_queued_requests_coalesce_to_one_run(tmp_path):
    """Duplicate submits admit pollable jobs but execute once; every
    waiter receives the primary's exact result bytes."""
    request = {"workload": "astar", "window": WINDOW}
    with running_service(tmp_path / "cache", hold=True) as (service, client):
        primary = client.submit("simulate", request)
        dup = client.submit("simulate", request)
        other = client.submit("simulate", {"workload": "lbm",
                                           "window": WINDOW})
        assert dup["coalesced_with"] == primary["job_id"]
        assert "coalesced_with" not in other
        stats = client.stats()
        assert stats["queue"]["depth"] == 2  # followers take no slot
        assert stats["queue"]["coalesced_waiting"] == 1
        assert stats["counters"]["jobs_coalesced"] == 1

        _release(service)
        first = client.wait(primary["job_id"], timeout=120)
        second = client.wait(dup["job_id"], timeout=120)
        client.wait(other["job_id"], timeout=120)
        assert first["state"] == second["state"] == DONE
        assert client.result(primary["job_id"]) == client.result(dup["job_id"])
        counters = client.stats()["counters"]
        assert counters["jobs_started"] == 2  # primary + "other", not dup
        assert counters["jobs_done"] == 3


def test_coalesced_submit_bypasses_full_queue(tmp_path):
    """A duplicate of a queued request is accepted even when the queue is
    full — it needs no slot — while a novel request is rejected."""
    request = {"workload": "astar", "window": WINDOW}
    with running_service(
        tmp_path / "cache", max_queue=1, hold=True
    ) as (service, client):
        client.submit("simulate", request)
        dup = client.submit("simulate", request)
        assert "coalesced_with" in dup
        with pytest.raises(ServiceError, match="queue full"):
            client.submit("simulate", {"workload": "lbm", "window": WINDOW})
        _release(service)  # drain cleanly instead of journaling the pair


def test_cancel_primary_promotes_oldest_follower(tmp_path):
    request = {"workload": "astar", "window": WINDOW}
    with running_service(tmp_path / "cache", hold=True) as (service, client):
        primary = client.submit("simulate", request)["job_id"]
        follower_a = client.submit("simulate", request)["job_id"]
        follower_b = client.submit("simulate", request)["job_id"]

        assert client.cancel(primary)["state"] == CANCELLED
        # oldest follower inherits the run and the remaining follower
        assert [job.id for job in service.queue.snapshot()] == [follower_a]
        stats = client.stats()
        assert stats["counters"]["jobs_promoted"] == 1
        assert stats["queue"]["coalesced_waiting"] == 1

        _release(service)
        assert client.wait(follower_a, timeout=120)["state"] == DONE
        assert client.wait(follower_b, timeout=120)["state"] == DONE
        assert client.result(follower_a) == client.result(follower_b)


def test_cancel_follower_leaves_primary_running(tmp_path):
    request = {"workload": "astar", "window": WINDOW}
    with running_service(tmp_path / "cache", hold=True) as (service, client):
        primary = client.submit("simulate", request)["job_id"]
        follower = client.submit("simulate", request)["job_id"]
        assert client.cancel(follower)["state"] == CANCELLED
        assert [job.id for job in service.queue.snapshot()] == [primary]
        assert client.stats()["queue"]["coalesced_waiting"] == 0
        _release(service)
        assert client.wait(primary, timeout=120)["state"] == DONE


def test_completed_request_is_not_coalesced_with(tmp_path):
    """Coalescing applies to *live* duplicates only; a resubmit after the
    primary finished runs again (served warm by the store, not welded to
    a dead job)."""
    request = {"workload": "astar", "window": WINDOW}
    with running_service(tmp_path / "cache") as (service, client):
        first = client.submit("simulate", request)["job_id"]
        assert client.wait(first, timeout=120)["state"] == DONE
        again = client.submit("simulate", request)
        assert "coalesced_with" not in again
        assert client.wait(again["job_id"], timeout=120)["state"] == DONE
        assert client.result(first) == client.result(again["job_id"])


# --------------------------------------------------------------------- #
# drain and resume (the SIGTERM contract, minus the signal)
# --------------------------------------------------------------------- #


def test_drain_preserves_queued_jobs_for_resume(tmp_path):
    """A draining daemon keeps queued jobs journaled; the next daemon on
    the same store re-enqueues and completes them under the same ids."""
    cache = tmp_path / "cache"
    with running_service(cache, hold=True) as (service, client):
        ids = [
            client.submit("simulate",
                          {"workload": "astar", "window": WINDOW})["job_id"],
            client.submit("simulate",
                          {"workload": "astar", "window": WINDOW,
                           "config": CONFIG})["job_id"],
        ]
    # Daemon drained: endpoint gone, jobs still queued in the journal.
    assert not endpoint_path(cache).exists()
    store = JobStore(jobs_dir(cache))
    assert [job.id for job in store.resumable()] == ids

    with running_service(cache) as (service, client):
        for job_id in ids:
            status = client.wait(job_id, timeout=120)
            assert status["state"] == DONE
            assert client.result(job_id)
        assert client.stats()["counters"]["jobs_resumed"] == 2
    assert JobStore(jobs_dir(cache)).resumable() == []


def test_draining_daemon_rejects_new_submits(tmp_path):
    with running_service(tmp_path / "cache", hold=True) as (service, client):
        service._draining = True  # as after SIGTERM, before socket close
        with pytest.raises(ServiceError, match="draining") as excinfo:
            client.submit("simulate", {"workload": "astar", "window": WINDOW})
        assert excinfo.value.status == 503
        assert client.health()["state"] == "draining"
        service._draining = False  # let the harness drain cleanly


# --------------------------------------------------------------------- #
# introspection
# --------------------------------------------------------------------- #


def test_stats_shape_and_health(tmp_path):
    with running_service(tmp_path / "cache", hold=True) as (service, client):
        assert client.health()["ok"] is True
        client.submit("simulate", {"workload": "astar", "window": WINDOW})
        stats = client.stats()
        assert stats["queue"]["depth"] == 1
        assert stats["queue"]["hold"] is True
        assert stats["jobs"][QUEUED] == 1
        assert set(stats["request_kinds"]) >= {"simulate", "sweep", "trace"}
        assert stats["counters"]["jobs_admitted"] == 1
        assert {"pool", "trace", "pool_warm_rate", "trace_hit_rate",
                "store", "store_hit_rate", "store_entries",
                "baseline_memory_entries"} <= set(stats["cache"])
        assert {"hits", "memo_hits", "misses", "publishes",
                "recoveries"} <= set(stats["cache"]["store"])
        assert "store_hits" in stats["cache"]["pool"]
        assert "coalesced_waiting" in stats["queue"]
        assert stats["uptime_s"] >= 0


# --------------------------------------------------------------------- #
# the real signal path: serve CLI + SIGTERM
# --------------------------------------------------------------------- #


def test_sigterm_drains_serve_process_and_preserves_queue(tmp_path):
    """SIGTERM to the serve CLI: exit 0, endpoint file removed (the clean
    -shutdown signal), queued jobs still journaled for the next daemon."""
    import os
    import signal
    import subprocess
    import sys

    from repro.service.client import wait_for_endpoint

    cache = tmp_path / "cache"
    env = dict(os.environ, PYTHONPATH="src")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.experiments", "serve", "--hold",
         "--port", "0", "--cache-dir", str(cache)],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True, env=env,
    )
    try:
        wait_for_endpoint(cache, timeout=30)
        client = ServiceClient(cache_dir=cache)
        job_id = client.submit(
            "simulate", {"workload": "astar", "window": WINDOW}
        )["job_id"]
        process.send_signal(signal.SIGTERM)
        output, _ = process.communicate(timeout=30)
    finally:
        if process.poll() is None:
            process.kill()
            process.communicate()
    assert process.returncode == 0, output
    assert "drained and stopped" in output
    assert not endpoint_path(cache).exists()
    assert [job.id for job in JobStore(jobs_dir(cache)).resumable()] == [job_id]
