"""Shared pytest configuration.

Adds ``--update-goldens``: regenerate the golden SimStats snapshots
under ``tests/goldens/`` instead of asserting against them (see
``test_goldens.py``).
"""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--update-goldens",
        action="store_true",
        default=False,
        help="rewrite tests/goldens/*.json from the current simulator",
    )


@pytest.fixture
def update_goldens(request) -> bool:
    return request.config.getoption("--update-goldens")


@pytest.fixture(autouse=True)
def _isolated_repro_cache(tmp_path, monkeypatch):
    """Keep the sweep engine's on-disk cache out of the repo during tests."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "repro-cache"))
