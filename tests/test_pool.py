"""Unit tests for the parallel sweep engine (repro.experiments.pool)."""

from __future__ import annotations

import dataclasses
import json
import os
import sys

import pytest

from repro.core import PFMParams, SimStats
from repro.experiments import pool as pool_module
from repro.experiments.pool import (
    SweepFailure,
    SweepPoint,
    SweepPool,
    baseline_point,
    pfm_point,
    stats_from_dict,
    stats_to_dict,
)

WINDOW = 1_500


def _fake_stats(instructions: int = 100, cycles: int = 200) -> SimStats:
    return SimStats(instructions=instructions, cycles=cycles)


@pytest.fixture
def counted_run_point(monkeypatch):
    """Replace run_point with a cheap counted fake (serial path only)."""
    calls: list[str] = []

    def fake(point: SweepPoint) -> SimStats:
        calls.append(point.label)
        return _fake_stats(cycles=100 + len(point.label))

    monkeypatch.setattr(pool_module, "run_point", fake)
    return calls


# ---------------------------------------------------------------------- #
# point identity
# ---------------------------------------------------------------------- #


def test_config_key_ignores_label():
    a = pfm_point("a", "libquantum", WINDOW, PFMParams(delay=0))
    b = pfm_point("b", "libquantum", WINDOW, PFMParams(delay=0))
    assert a.config_key() == b.config_key()


def test_config_key_sensitive_to_every_config_field():
    base = pfm_point("x", "libquantum", WINDOW, PFMParams(delay=0))
    variants = [
        pfm_point("x", "bwaves", WINDOW, PFMParams(delay=0)),
        pfm_point("x", "libquantum", WINDOW + 1, PFMParams(delay=0)),
        pfm_point("x", "libquantum", WINDOW, PFMParams(delay=2)),
        pfm_point("x", "libquantum", WINDOW, PFMParams(delay=0), seed=9),
        baseline_point("libquantum", WINDOW, label="x"),
        SweepPoint(label="x", workload="libquantum", window=WINDOW,
                   perfect_dcache=True),
        SweepPoint(label="x", workload="libquantum", window=WINDOW,
                   oracle="astar-slipstream"),
    ]
    keys = {point.config_key() for point in variants}
    assert base.config_key() not in keys
    assert len(keys) == len(variants)


def test_is_baseline():
    assert baseline_point("astar", WINDOW).is_baseline
    assert baseline_point("astar", WINDOW, seed=3).is_baseline
    assert not pfm_point("p", "astar", WINDOW, PFMParams()).is_baseline
    assert not SweepPoint(label="p", workload="astar", window=WINDOW,
                          perfect_branch_prediction=True).is_baseline


def test_stats_round_trip():
    stats = _fake_stats()
    stats.memory_levels = {"L1": {"accesses": 10.0, "misses": 1.0}}
    assert stats_from_dict(stats_to_dict(stats)) == stats
    assert stats_from_dict(
        json.loads(json.dumps(stats_to_dict(stats)))
    ) == stats


# ---------------------------------------------------------------------- #
# execution semantics
# ---------------------------------------------------------------------- #


def test_duplicate_labels_rejected():
    points = [baseline_point("astar", WINDOW), baseline_point("astar", WINDOW)]
    with pytest.raises(ValueError, match="duplicate"):
        SweepPool().run(points)


def test_jobs_must_be_positive():
    with pytest.raises(ValueError):
        SweepPool(jobs=0)


def test_identical_configs_computed_once(counted_run_point):
    points = [
        pfm_point("first", "libquantum", WINDOW, PFMParams(delay=0)),
        pfm_point("second", "libquantum", WINDOW, PFMParams(delay=0)),
    ]
    results = SweepPool().run(points)
    assert len(counted_run_point) == 1
    assert results["first"] is results["second"]


def test_results_keyed_by_label_in_any_order(counted_run_point):
    points = [
        pfm_point("a", "libquantum", WINDOW, PFMParams(delay=0)),
        pfm_point("b", "libquantum", WINDOW, PFMParams(delay=2)),
    ]
    results = SweepPool().run(points)
    assert set(results) == {"a", "b"}


def test_speedup_pct():
    results = {
        "base": _fake_stats(instructions=100, cycles=200),
        "fast": _fake_stats(instructions=100, cycles=100),
    }
    assert SweepPool().speedup_pct(results, "fast", "base") == pytest.approx(100.0)


# ---------------------------------------------------------------------- #
# result store
# ---------------------------------------------------------------------- #


def test_results_persist_to_disk_store(tmp_path, counted_run_point):
    point = baseline_point("libquantum", WINDOW)
    pool = SweepPool(cache_dir=tmp_path)
    first = pool.run([point])[point.label]
    assert len(list((tmp_path / "store").glob("??/*.json"))) == 1

    # a brand-new pool (fresh memory cache) must hit the disk store
    fresh = SweepPool(cache_dir=tmp_path)
    second = fresh.run([point])[point.label]
    assert len(counted_run_point) == 1  # only the first run computed
    assert fresh.last_run_info["store_hits"] == 1
    assert dataclasses.asdict(first) == dataclasses.asdict(second)


def test_pfm_points_served_from_store(tmp_path, counted_run_point):
    """Every point kind is store-backed now, not just plain baselines
    (the pre-store engine persisted a baselines/ dir; the store subsumed
    it, so a second invocation replays PFM points too)."""
    point = pfm_point("p", "libquantum", WINDOW, PFMParams(delay=0))
    SweepPool(cache_dir=tmp_path).run([point])
    second = SweepPool(cache_dir=tmp_path)
    second.run([point])
    assert len(counted_run_point) == 1
    assert second.last_run_info == {
        "computed": 0, "resumed": 0, "cached": 0, "store_hits": 1,
        "failed": 0,
    }
    assert not (tmp_path / "baselines").exists()  # legacy dir never written


def test_pfm_store_hits_skip_the_memory_memo(tmp_path, counted_run_point):
    """Without memoize_all, a PFM point stays out of the in-pool memory
    memo even when it was served from the store (the memo gating is what
    keeps a long-lived pool's footprint bounded to baselines)."""
    point = pfm_point("p", "libquantum", WINDOW, PFMParams(delay=0))
    SweepPool(cache_dir=tmp_path).run([point])
    pool = SweepPool(cache_dir=tmp_path)
    pool.run([point])
    assert point.key() not in pool._memory_cache


def test_memory_cache_without_disk(counted_run_point):
    point = baseline_point("libquantum", WINDOW)
    pool = SweepPool()  # no cache_dir
    pool.run([point])
    pool.run([point])
    assert len(counted_run_point) == 1  # in-memory reuse within the pool


# ---------------------------------------------------------------------- #
# checkpoint / resume
# ---------------------------------------------------------------------- #


def test_checkpoint_written_and_cleared_on_success(tmp_path, counted_run_point):
    checkpoint = tmp_path / "ck.jsonl"
    pool = SweepPool(checkpoint=checkpoint)
    pool.run([pfm_point("p", "libquantum", WINDOW, PFMParams(delay=0))])
    assert not checkpoint.exists()  # finished sweeps leave no checkpoint


def test_resume_skips_finished_points(tmp_path, counted_run_point):
    points = [
        pfm_point("done", "libquantum", WINDOW, PFMParams(delay=0)),
        pfm_point("todo", "libquantum", WINDOW, PFMParams(delay=2)),
    ]
    checkpoint = tmp_path / "ck.jsonl"
    finished = _fake_stats(cycles=777)
    checkpoint.write_text(
        json.dumps({"key": points[0].key(), "stats": stats_to_dict(finished)})
        + "\n"
    )

    results = SweepPool(checkpoint=checkpoint).run(points)
    assert counted_run_point == ["todo"]  # "done" replayed from checkpoint
    assert results["done"].cycles == 777
    assert not checkpoint.exists()


def test_resume_short_circuits_through_store(tmp_path, counted_run_point):
    """Resuming an interrupted sweep must not re-run points whose results
    already sit in the result store (e.g. published by another daemon or
    a previous partial run): checkpoint hits resume, store hits replay,
    and only genuinely new work computes."""
    points = [
        pfm_point("ckpt", "libquantum", WINDOW, PFMParams(delay=0)),
        pfm_point("stored", "libquantum", WINDOW, PFMParams(delay=2)),
        pfm_point("new", "libquantum", WINDOW, PFMParams(delay=4)),
    ]
    # first run publishes "stored" into the shared store
    SweepPool(cache_dir=tmp_path).run([points[1]])
    # interrupted run left "ckpt" in a checkpoint file
    checkpoint = tmp_path / "ck.jsonl"
    checkpoint.write_text(
        json.dumps(
            {"key": points[0].key(), "stats": stats_to_dict(_fake_stats())}
        ) + "\n"
    )

    pool = SweepPool(cache_dir=tmp_path, checkpoint=checkpoint)
    results = pool.run(points)
    assert set(results) == {"ckpt", "stored", "new"}
    assert counted_run_point == ["stored", "new"]  # "stored" from run 1
    assert pool.last_run_info == {
        "computed": 1, "resumed": 1, "cached": 0, "store_hits": 1,
        "failed": 0,
    }
    # the checkpoint-resumed point was also published for other hosts
    from repro.store import ResultStore, store_dir
    assert points[0].store_key() in ResultStore(store_dir(tmp_path))


def test_resume_tolerates_torn_final_line(tmp_path, counted_run_point):
    points = [pfm_point("p", "libquantum", WINDOW, PFMParams(delay=0))]
    checkpoint = tmp_path / "ck.jsonl"
    checkpoint.write_text('{"key": "x", "stats": {"instr')  # killed mid-write
    results = SweepPool(checkpoint=checkpoint).run(points)
    assert counted_run_point == ["p"]
    assert "p" in results


# ---------------------------------------------------------------------- #
# crash retry / failure containment
# ---------------------------------------------------------------------- #


def _retry_pool(**kwargs) -> SweepPool:
    kwargs.setdefault("retry_backoff", 0.0)
    return SweepPool(**kwargs)


def test_retry_params_validated():
    with pytest.raises(ValueError):
        SweepPool(retries=-1)
    with pytest.raises(ValueError):
        SweepPool(retry_backoff=-0.5)


def test_transient_failure_retried_to_success(monkeypatch):
    attempts: list[str] = []

    def flaky(point):
        attempts.append(point.label)
        if len(attempts) < 2:
            raise OSError("worker lost")
        return _fake_stats()

    monkeypatch.setattr(pool_module, "run_point", flaky)
    point = pfm_point("p", "libquantum", WINDOW, PFMParams(delay=0))
    results = _retry_pool().run([point])
    assert attempts == ["p", "p"]
    assert "p" in results


def test_persistent_failure_raises_and_keeps_checkpoint(
    tmp_path, monkeypatch
):
    def half_broken(point):
        if point.label == "bad":
            raise RuntimeError("always dies")
        return _fake_stats()

    monkeypatch.setattr(pool_module, "run_point", half_broken)
    points = [
        pfm_point("ok", "libquantum", WINDOW, PFMParams(delay=0)),
        pfm_point("bad", "libquantum", WINDOW, PFMParams(delay=2)),
    ]
    checkpoint = tmp_path / "ck.jsonl"
    pool = _retry_pool(checkpoint=checkpoint)
    with pytest.raises(SweepFailure) as exc_info:
        pool.run(points)
    assert exc_info.value.errors == {"bad": "RuntimeError: always dies"}
    assert pool.last_run_info["failed"] == 1

    # The checkpoint survives: the success as stats, the failure marked.
    assert checkpoint.exists()
    records = [
        json.loads(line) for line in checkpoint.read_text().splitlines()
    ]
    by_key = {record["key"]: record for record in records}
    assert "stats" in by_key[points[0].key()]
    assert by_key[points[1].key()]["failed"] is True
    assert "always dies" in by_key[points[1].key()]["error"]


def test_resume_retries_previously_failed_point(tmp_path, monkeypatch):
    points = [
        pfm_point("ok", "libquantum", WINDOW, PFMParams(delay=0)),
        pfm_point("bad", "libquantum", WINDOW, PFMParams(delay=2)),
    ]
    checkpoint = tmp_path / "ck.jsonl"
    checkpoint.write_text(
        json.dumps(
            {"key": points[0].key(), "stats": stats_to_dict(_fake_stats())}
        )
        + "\n"
        + json.dumps(
            {"key": points[1].key(), "failed": True, "error": "boom"}
        )
        + "\n"
    )

    calls: list[str] = []

    def healed(point):
        calls.append(point.label)
        return _fake_stats()

    monkeypatch.setattr(pool_module, "run_point", healed)
    results = _retry_pool(checkpoint=checkpoint).run(points)
    assert calls == ["bad"]  # only the failed point recomputed
    assert set(results) == {"ok", "bad"}
    assert not checkpoint.exists()  # fully successful sweep cleans up


def test_fail_fast_raises_original_error_unretried(monkeypatch):
    attempts: list[str] = []

    def dies(point):
        attempts.append(point.label)
        raise ValueError("bad config")

    monkeypatch.setattr(pool_module, "run_point", dies)
    point = pfm_point("p", "libquantum", WINDOW, PFMParams(delay=0))
    with pytest.raises(ValueError, match="bad config"):
        _retry_pool(fail_fast=True).run([point])
    assert attempts == ["p"]


def test_retries_zero_fails_after_single_attempt(monkeypatch):
    attempts: list[str] = []

    def dies(point):
        attempts.append(point.label)
        raise RuntimeError("nope")

    monkeypatch.setattr(pool_module, "run_point", dies)
    point = pfm_point("p", "libquantum", WINDOW, PFMParams(delay=0))
    with pytest.raises(SweepFailure):
        _retry_pool(retries=0).run([point])
    assert attempts == ["p"]


_CRASH_FLAG = ""  # set per-test; forked workers inherit the value


def _crash_once_run_point(point):
    """Module-level so executor.submit can pickle it by reference."""
    if point.label == "crashy" and not os.path.exists(_CRASH_FLAG):
        with open(_CRASH_FLAG, "w") as handle:
            handle.write("x")
        os._exit(1)  # hard kill, as an OOM or segfault would
    return _fake_stats()


def test_worker_crash_retried_in_fresh_executor(tmp_path, monkeypatch):
    """A worker process dying outright (BrokenProcessPool) is retried in
    the next round's fresh executor and the sweep still completes."""
    monkeypatch.setattr(
        sys.modules[__name__], "_CRASH_FLAG", str(tmp_path / "crashed-once")
    )
    monkeypatch.setattr(pool_module, "run_point", _crash_once_run_point)
    points = [
        pfm_point("crashy", "libquantum", WINDOW, PFMParams(delay=0)),
        pfm_point("ok", "libquantum", WINDOW, PFMParams(delay=2)),
    ]
    results = _retry_pool(jobs=2).run(points)
    assert set(results) == {"crashy", "ok"}
    assert os.path.exists(str(tmp_path / "crashed-once"))


def test_interrupted_sweep_leaves_checkpoint(tmp_path, monkeypatch):
    """A crash mid-sweep preserves completed points for the next run."""
    points = [
        pfm_point("ok", "libquantum", WINDOW, PFMParams(delay=0)),
        pfm_point("boom", "libquantum", WINDOW, PFMParams(delay=2)),
    ]

    def explode_on_second(point):
        if point.label == "boom":
            raise KeyboardInterrupt
        return _fake_stats()

    monkeypatch.setattr(pool_module, "run_point", explode_on_second)
    checkpoint = tmp_path / "ck.jsonl"
    with pytest.raises(KeyboardInterrupt):
        SweepPool(checkpoint=checkpoint).run(points)
    assert checkpoint.exists()
    lines = checkpoint.read_text().splitlines()
    assert len(lines) == 1
    assert json.loads(lines[0])["key"] == points[0].key()


# ---------------------------------------------------------------------- #
# checkpoint robustness (crash-safe appends / tolerant loads)
# ---------------------------------------------------------------------- #


def test_torn_trailing_checkpoint_line_is_skipped(tmp_path, counted_run_point):
    """A run killed mid-append leaves a torn final JSONL line; resuming
    must skip it (recomputing that point) instead of raising."""
    done = pfm_point("done", "libquantum", WINDOW, PFMParams(delay=0))
    torn = pfm_point("torn", "libquantum", WINDOW, PFMParams(delay=2))
    checkpoint = tmp_path / "ck.jsonl"
    good = json.dumps({"key": done.key(), "stats": stats_to_dict(_fake_stats())})
    half = json.dumps({"key": torn.key(), "stats": stats_to_dict(_fake_stats())})
    checkpoint.write_text(good + "\n" + half[: len(half) // 2])

    results = SweepPool(checkpoint=checkpoint).run([done, torn])
    assert set(results) == {"done", "torn"}
    assert counted_run_point == ["torn"]  # only the torn point recomputed


def test_checkpoint_record_with_foreign_stats_schema_is_recomputed(
    tmp_path, counted_run_point
):
    """Valid JSON whose stats payload doesn't match SimStats (e.g. written
    by an older schema) is recomputed, not trusted or fatal."""
    point = pfm_point("p", "libquantum", WINDOW, PFMParams(delay=0))
    checkpoint = tmp_path / "ck.jsonl"
    checkpoint.write_text(
        json.dumps({"key": point.key(), "stats": "not-a-dict"}) + "\n"
        + json.dumps(["not", "a", "record"]) + "\n"
        + json.dumps({"no_key": True}) + "\n"
    )
    results = SweepPool(checkpoint=checkpoint).run([point])
    assert set(results) == {"p"}
    assert counted_run_point == ["p"]


def test_checkpoint_appends_are_fsynced(tmp_path, monkeypatch, counted_run_point):
    """Every checkpoint append must reach the disk before the next point
    starts: flush + fsync per record."""
    synced: list[int] = []
    real_fsync = os.fsync
    monkeypatch.setattr(
        pool_module.os, "fsync", lambda fd: synced.append(fd) or real_fsync(fd)
    )
    points = [
        pfm_point("a", "libquantum", WINDOW, PFMParams(delay=0)),
        pfm_point("b", "libquantum", WINDOW, PFMParams(delay=2)),
    ]
    SweepPool(checkpoint=tmp_path / "ck.jsonl").run(points)
    assert len(synced) == len(points)


def test_memoize_all_serves_pfm_points_from_memory(counted_run_point):
    """With memoize_all (the service's warm mode) repeated PFM points are
    pure memory-cache hits; the default pool recomputes them."""
    point = pfm_point("p", "libquantum", WINDOW, PFMParams(delay=0))
    warm = SweepPool(memoize_all=True)
    warm.run([point])
    warm.run([point])
    assert counted_run_point == ["p"]  # second run served from memory

    cold = SweepPool()
    cold.run([point])
    cold.run([point])
    assert counted_run_point == ["p", "p", "p"]
