"""Branch predictors: bimodal, gshare, TAGE, loop predictor, SC, TAGE-SC-L."""

import random

import pytest

from repro.frontend.loop_predictor import LoopPredictor
from repro.frontend.predictor import PerfectPredictor
from repro.frontend.simple import (
    AlwaysTakenPredictor,
    BimodalPredictor,
    GSharePredictor,
    SaturatingCounter,
)
from repro.frontend.statistical_corrector import StatisticalCorrector
from repro.frontend.tage import Tage
from repro.frontend.tagescl import TageSCL


def accuracy(predictor, stream):
    """Train/predict over (pc, taken) pairs; return accuracy."""
    correct = 0
    for pc, taken in stream:
        if predictor.predict(pc) == taken:
            correct += 1
        predictor.update(pc, taken)
    return correct / len(stream)


def biased_stream(pc=0x4000, length=2000, taken=True):
    return [(pc, taken)] * length


def alternating_stream(pc=0x4000, length=2000):
    return [(pc, i % 2 == 0) for i in range(length)]


def random_stream(pc=0x4000, length=2000, seed=9):
    rng = random.Random(seed)
    return [(pc, rng.random() < 0.5) for i in range(length)]


# ---------------------------------------------------------------------- #
# saturating counter
# ---------------------------------------------------------------------- #

def test_saturating_counter_saturates():
    counter = SaturatingCounter(bits=2, initial=0)
    for _ in range(10):
        counter.train(True)
    assert counter.value == 3 and counter.taken
    for _ in range(10):
        counter.train(False)
    assert counter.value == 0 and not counter.taken


# ---------------------------------------------------------------------- #
# simple predictors
# ---------------------------------------------------------------------- #

def test_always_taken():
    predictor = AlwaysTakenPredictor()
    assert predictor.predict(0x1000) is True
    predictor.update(0x1000, False)  # no-op
    assert predictor.predict(0x1000) is True


def test_bimodal_learns_bias():
    assert accuracy(BimodalPredictor(), biased_stream()) > 0.99


def test_bimodal_cannot_learn_alternation():
    assert accuracy(BimodalPredictor(), alternating_stream()) < 0.75


def test_gshare_learns_alternation():
    assert accuracy(GSharePredictor(), alternating_stream()) > 0.95


# ---------------------------------------------------------------------- #
# TAGE
# ---------------------------------------------------------------------- #

def test_tage_learns_bias():
    assert accuracy(Tage(), biased_stream()) > 0.99


def test_tage_learns_alternation():
    assert accuracy(Tage(), alternating_stream()) > 0.95


def test_tage_learns_history_pattern():
    # Repeating pattern of period 7: requires history correlation.
    pattern = [True, True, False, True, False, False, True]
    stream = [(0x5000, pattern[i % 7]) for i in range(4000)]
    assert accuracy(Tage(), stream[2000:]) > 0.90 or accuracy(Tage(), stream) > 0.85


def test_tage_cannot_learn_random():
    assert accuracy(Tage(), random_stream()) < 0.65


def test_tage_update_without_predict_raises():
    with pytest.raises(RuntimeError):
        Tage().update(0x1000, True)


def test_tage_update_pc_mismatch_raises():
    predictor = Tage()
    predictor.predict(0x1000)
    with pytest.raises(RuntimeError):
        predictor.update(0x2000, True)


def test_tage_storage_accounting_positive():
    assert Tage().storage_bits() > 10_000


def test_tage_multiple_branches_interleaved():
    predictor = Tage()
    stream = []
    for i in range(1500):
        stream.append((0x100, True))
        stream.append((0x200, False))
    assert accuracy(predictor, stream) > 0.98


# ---------------------------------------------------------------------- #
# loop predictor
# ---------------------------------------------------------------------- #

def test_loop_predictor_learns_fixed_trip_count():
    loop = LoopPredictor()
    pc = 0x6000
    # Train several complete loops of 5 iterations (4 taken, 1 not-taken).
    for _ in range(6):
        for i in range(5):
            loop.update(pc, i < 4)
    # Now it should predict the exit on the 5th iteration.
    predictions = []
    for i in range(5):
        pred = loop.lookup(pc)
        predictions.append(pred)
        loop.update(pc, i < 4)
    assert all(p.valid for p in predictions)
    assert [p.taken for p in predictions] == [True, True, True, True, False]


def test_loop_predictor_unstable_trip_counts_stay_invalid():
    loop = LoopPredictor()
    pc = 0x6000
    rng = random.Random(3)
    for _ in range(30):
        trips = rng.randint(1, 6)
        for i in range(trips):
            loop.update(pc, i < trips - 1)
    assert not loop.lookup(pc).valid


# ---------------------------------------------------------------------- #
# statistical corrector
# ---------------------------------------------------------------------- #

def test_sc_agrees_with_confident_tage():
    sc = StatisticalCorrector()
    # With no training, SC should not override a TAGE direction strongly.
    taken = sc.predict(0x7000, True)
    assert isinstance(taken, bool)


def test_sc_learns_to_correct_biased_branch():
    sc = StatisticalCorrector()
    pc = 0x7000
    # TAGE always says not-taken, truth is always taken -> SC learns.
    for _ in range(500):
        sc.update(pc, False, True)
    assert sc.predict(pc, False) is True


# ---------------------------------------------------------------------- #
# TAGE-SC-L composition
# ---------------------------------------------------------------------- #

def test_tagescl_learns_bias_and_alternation():
    assert accuracy(TageSCL(), biased_stream()) > 0.99
    assert accuracy(TageSCL(), alternating_stream()) > 0.90


def test_tagescl_loop_component_handles_regular_loops():
    stream = []
    for _ in range(400):
        for i in range(12):
            stream.append((0x8000, i < 11))
    predictor = TageSCL()
    acc = accuracy(predictor, stream[2400:])
    assert acc > 0.95


def test_tagescl_update_order_enforced():
    predictor = TageSCL()
    predictor.predict(0x100)
    with pytest.raises(RuntimeError):
        predictor.update(0x200, True)


def test_tagescl_pending_depth_tracks_inflight():
    predictor = TageSCL()
    for i in range(5):
        predictor.predict(0x100 + 4 * i)
    assert predictor.pending_depth == 5
    predictor.update(0x100, True)
    assert predictor.pending_depth == 4


# ---------------------------------------------------------------------- #
# perfect predictor
# ---------------------------------------------------------------------- #

def test_perfect_predictor_requires_staged_outcome():
    predictor = PerfectPredictor()
    with pytest.raises(RuntimeError):
        predictor.predict(0x100)
    predictor.stage_outcome(True)
    assert predictor.predict(0x100) is True
