"""RFIo width budgets and the RF timing model."""

from tests.pfm_harness import FakeFabric, make_io, send_obs

from repro.pfm.component import CustomComponent, RFIo, RFTimings
from repro.pfm.snoop import SnoopKind
from repro.workloads.mem import MemoryImage


def test_rf_timings_output_ready():
    t = RFTimings(clk_ratio=4, width=2, delay=3)
    # Output of RF cycle r exits the D-deep pipe at (r + 1 + D) * C.
    assert t.output_ready(0) == 16
    assert t.output_ready(5) == 36
    assert t.core_time(5) == 20


class _Greedy(CustomComponent):
    """Pushes/pops as much as the io allows each cycle."""

    def __init__(self, timings, memory, metadata=None):
        super().__init__(timings, memory, metadata)
        self.obs_popped = 0
        self.preds_pushed = 0
        self.loads_pushed = 0

    def step(self, io: RFIo) -> None:
        while io.pop_obs() is not None:
            self.obs_popped += 1
        while io.push_pred(True, tag="x"):
            self.preds_pushed += 1
        ident = 0
        while io.push_load(ident, 0x1000 + 8 * ident):
            self.loads_pushed += 1
            ident += 1


def greedy(width=2):
    memory = MemoryImage()
    component = _Greedy(RFTimings(4, width, 0), memory)
    fabric = FakeFabric(memory)
    io = make_io(component, fabric)
    return component, fabric, io


def test_obs_budget_is_width():
    component, fabric, io = greedy(width=2)
    for i in range(10):
        send_obs(fabric, SnoopKind.DEST_VALUE, f"t{i}", value=i)
    io.begin_cycle(0)
    component.step(io)
    assert component.obs_popped == 2  # W per cycle
    io.begin_cycle(1)
    component.step(io)
    assert component.obs_popped == 4


def test_pred_budget_is_width():
    component, fabric, io = greedy(width=3)
    io.begin_cycle(0)
    component.step(io)
    assert component.preds_pushed == 3


def test_load_budget_is_width_plus_one():
    """The paper's W=4 astar design pushes up to 5 loads per FPGA cycle
    (one from T0 plus four from T1): the load budget is W + 1."""
    component, fabric, io = greedy(width=4)
    io.begin_cycle(0)
    component.step(io)
    assert component.loads_pushed == 5


def test_budgets_reset_each_cycle():
    component, fabric, io = greedy(width=1)
    for cycle in range(5):
        io.begin_cycle(cycle)
        component.step(io)
    assert component.preds_pushed == 5
    assert component.loads_pushed == 10  # (W + 1) per cycle


def test_base_component_contract():
    component = CustomComponent(RFTimings(4, 1, 0), MemoryImage())
    assert component.is_idle()
    assert component.structure() == {}
    import pytest

    with pytest.raises(NotImplementedError):
        component.step(None)


def test_io_now_tracks_rf_clock():
    component, fabric, io = greedy(width=1)
    io.begin_cycle(7)
    assert io.rf_cycle == 7
    assert io.now == 28  # 7 * clk_ratio(4)
