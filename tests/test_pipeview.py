"""Pipeline timeline tracing and rendering."""

from repro.core import SimConfig
from repro.core.pipeview import render_timeline, trace_pipeline
from repro.isa.builder import ProgramBuilder
from repro.memory.hierarchy import HierarchyParams
from repro.workloads.base import Workload
from repro.workloads.mem import MemoryImage


def traced(build, n=200):
    b = ProgramBuilder()
    build(b)
    workload = Workload("t", b.build(), MemoryImage())
    return trace_pipeline(
        workload,
        SimConfig(max_instructions=n, memory=HierarchyParams(tlb_walk_latency=0)),
    )


def simple_loop(b):
    b.li("t1", 0)
    b.li("t2", 100)
    b.label("loop")
    b.addi("t0", "t0", 1)
    b.addi("t1", "t1", 1)
    b.blt("t1", "t2", "loop")
    b.halt()


def test_records_cover_all_instructions():
    core = traced(simple_loop)
    assert len(core.records) == core.stats.instructions


def test_stage_order_causal():
    core = traced(simple_loop)
    for r in core.records:
        assert r.fetch <= r.dispatch <= r.issue <= r.complete <= r.retire


def test_dependent_chain_visible_in_issue_times():
    def build(b):
        b.li("t0", 1)
        for _ in range(6):
            b.addi("t0", "t0", 1)  # serial chain
        b.halt()

    core = traced(build, n=20)
    chain = [r for r in core.records if r.text.startswith("addi")]
    issues = [r.issue for r in chain]
    assert all(b > a for a, b in zip(issues, issues[1:]))


def test_render_contains_stage_marks():
    core = traced(simple_loop)
    text = render_timeline(core.records, start_seq=0, count=8)
    assert "F" in text and "R" in text
    assert "addi" in text
    assert "|" in text


def test_render_window_selection():
    core = traced(simple_loop)
    text = render_timeline(core.records, start_seq=50, count=4)
    assert text.count("\n") <= 5  # header + 4 rows


def test_render_empty_range():
    core = traced(simple_loop)
    assert "no records" in render_timeline(core.records, start_seq=10**9)


def test_max_records_cap():
    core = traced(simple_loop, n=300)
    capped = trace_pipeline(
        Workload("t", core.workload.program, MemoryImage()),
        SimConfig(max_instructions=300,
                  memory=HierarchyParams(tlb_walk_latency=0)),
        max_records=10,
    )
    assert len(capped.records) == 10
