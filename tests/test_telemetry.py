"""Telemetry subsystem: probes, ring sink, exporters, trace determinism."""

import json

import pytest

from repro.core import PFMParams, SimConfig, simulate
from repro.experiments.pool import SweepPool
from repro.experiments.runner import build_workload
from repro.experiments.trace import trace_points
from repro.telemetry import (
    EVENT_GROUPS,
    RingBufferSink,
    SquashEvent,
    TelemetryParams,
    events_csv,
    metrics_manifest,
    perfetto_json,
)
from repro.telemetry.export import perfetto_trace

WINDOW = 3_000
PFM = PFMParams()  # the Table 2 configuration (clk4_w4, delay4, queue32)


def run_astar(telemetry=None, window=WINDOW):
    return simulate(
        build_workload("astar"),
        SimConfig(max_instructions=window, pfm=PFM, telemetry=telemetry),
    )


@pytest.fixture(scope="module")
def traced():
    return run_astar(TelemetryParams(ring_capacity=65_536, sample_period=64))


# --------------------------------------------------------------------- #
# observe-only invariant
# --------------------------------------------------------------------- #


def test_probes_do_not_perturb_the_run(traced):
    plain = run_astar()
    assert plain.arch_digest == traced.arch_digest
    assert plain.cycles == traced.cycles
    assert plain.instructions == traced.instructions
    assert plain.pipeline_squashes == traced.pipeline_squashes


def test_snapshot_lands_in_stats(traced):
    snapshot = traced.telemetry
    assert snapshot is not None
    assert snapshot["captured"] == len(snapshot["events"])
    assert snapshot["dropped"] == 0  # 64k ring swallows a 3k window
    # Emission counts cover every captured event.
    assert sum(snapshot["counts"].values()) == snapshot["captured"]
    assert snapshot["counts"]["stage"] == traced.instructions
    assert snapshot["counts"]["squash"] == traced.pipeline_squashes
    assert run_astar().telemetry is None


def test_snapshot_is_json_safe(traced):
    json.dumps(traced.telemetry)


# --------------------------------------------------------------------- #
# ring buffer drop accounting
# --------------------------------------------------------------------- #


def test_ring_sink_head_anchored():
    sink = RingBufferSink(2)
    for ts in range(5):
        sink.emit(SquashEvent(ts=ts, reason="branch"))
    assert [e.ts for e in sink.events] == [0, 1]
    assert sink.dropped == 3
    with pytest.raises(ValueError):
        RingBufferSink(0)


def test_tiny_ring_drop_accounting():
    stats = run_astar(TelemetryParams(ring_capacity=64, sample_period=64))
    snapshot = stats.telemetry
    assert snapshot["captured"] == 64
    assert snapshot["dropped"] > 0
    assert (
        sum(snapshot["counts"].values())
        == snapshot["captured"] + snapshot["dropped"]
    )
    # Drops never appear in the exported trace; the header reports them.
    trace = perfetto_trace(snapshot)
    assert trace["otherData"]["dropped_events"] == snapshot["dropped"]


def test_group_filter():
    stats = run_astar(
        TelemetryParams(ring_capacity=65_536, groups=("stage", "squash"))
    )
    kinds = {event["kind"] for event in stats.telemetry["events"]}
    assert kinds <= {"stage", "squash"}
    assert stats.telemetry["counts"]["stage"] == stats.instructions
    with pytest.raises(ValueError):
        TelemetryParams(groups=("stage", "bogus"))
    assert set(EVENT_GROUPS) >= {"stage", "squash", "queue", "agent", "sample"}


# --------------------------------------------------------------------- #
# Perfetto exporter schema
# --------------------------------------------------------------------- #


def test_perfetto_schema(traced):
    trace = perfetto_trace(traced.telemetry)
    events = trace["traceEvents"]
    assert events, "empty trace"
    for event in events:
        assert event["ph"] in ("M", "X", "C", "i")
        assert isinstance(event["ts"], int)
        assert isinstance(event["pid"], int)
        if event["ph"] != "M" or "tid" in event:
            pass  # process_name metadata legitimately has no tid
        if event["ph"] == "X":
            assert event["dur"] >= 0
            assert "tid" in event
        if event["ph"] == "i":
            assert event["s"] == "t"
    parsed = json.loads(perfetto_json(traced.telemetry))
    assert parsed["traceEvents"]


def test_perfetto_stage_spans_cover_all_five_stages(traced):
    trace = perfetto_trace(traced.telemetry)
    stages = {
        e["args"]["stage"]
        for e in trace["traceEvents"]
        if e["ph"] == "X" and "stage" in e.get("args", {})
    }
    assert stages == {"F", "D", "I", "C", "R"}


def test_perfetto_occupancy_counter_tracks(traced):
    trace = perfetto_trace(traced.telemetry)
    counters = {e["name"] for e in trace["traceEvents"] if e["ph"] == "C"}
    for track in ("occ:ObsQ-R", "occ:IntQ-F", "occ:IntQ-IS", "occ:ObsQ-EX",
                  "occ:MLB"):
        assert track in counters, f"missing counter track {track}"


def test_perfetto_timestamps_monotonic(traced):
    trace = perfetto_trace(traced.telemetry)
    body = [e for e in trace["traceEvents"] if e["ph"] != "M"]
    timestamps = [e["ts"] for e in body]
    assert timestamps == sorted(timestamps)
    assert all(ts >= 0 for ts in timestamps)


def test_csv_export(traced):
    text = events_csv(traced.telemetry)
    lines = text.splitlines()
    header = lines[0].split(",")
    assert header[:3] == ["kind", "ts", "name"]
    assert len(lines) == 1 + traced.telemetry["captured"]
    assert all(line.count(",") == len(header) - 1 for line in lines)


# --------------------------------------------------------------------- #
# determinism across --jobs
# --------------------------------------------------------------------- #


def test_trace_artifacts_identical_across_jobs():
    points = trace_points("astar", 2_000)
    serial = SweepPool(jobs=1).run(points)
    fanned = SweepPool(jobs=4).run([  # fresh point objects, same spec
        *trace_points("astar", 2_000)
    ])
    label = points[1].label
    assert perfetto_json(serial[label].telemetry) == perfetto_json(
        fanned[label].telemetry
    )
    assert events_csv(serial[label].telemetry) == events_csv(
        fanned[label].telemetry
    )


# --------------------------------------------------------------------- #
# pool interaction
# --------------------------------------------------------------------- #


def test_telemetry_point_is_not_a_baseline():
    plain, traced_point = trace_points("astar", 2_000)
    assert plain.is_baseline
    assert not traced_point.is_baseline
    # Hash is sensitive to the telemetry spec ...
    other = trace_points("astar", 2_000, ring=128)[1]
    assert traced_point.config_key() != other.config_key()
    # ... but absent telemetry leaves pre-existing hashes untouched.
    assert plain.config_key() == trace_points("astar", 2_000)[0].config_key()


# --------------------------------------------------------------------- #
# SimStats.to_dict + queue counters + manifest
# --------------------------------------------------------------------- #


def test_queue_stats_surface_in_simstats(traced):
    assert set(traced.queue_stats) == {"ObsQ-R", "IntQ-IS", "ObsQ-EX", "IntQ-F"}
    for counters in traced.queue_stats.values():
        assert counters["pushes"] >= counters["pops"] >= 0
        assert counters["max_occupancy"] >= 0
        assert counters["full_rejects"] >= 0
    assert run_astar(window=500).queue_stats  # populated without telemetry


def test_to_dict_flat_stable_and_complete(traced):
    flat = traced.to_dict()
    assert list(flat) == sorted(flat)
    assert flat["instructions"] == traced.instructions
    assert flat["ipc"] == traced.ipc
    assert any(key.startswith("load_hits_") for key in flat)
    assert any(key.startswith("mem_") for key in flat)
    assert flat["queue_obsq_r_pushes"] == traced.queue_stats["ObsQ-R"]["pushes"]
    assert "telemetry" not in flat  # bulk events stay out of the metrics view
    assert all(not isinstance(v, dict) for v in flat.values())


def test_metrics_manifest(traced):
    base = run_astar()
    manifest = metrics_manifest(traced, baseline=base)
    assert manifest["schema"].startswith("repro-telemetry-manifest/")
    assert manifest["metrics"]["instructions"] == traced.instructions
    assert manifest["telemetry"]["captured"] == traced.telemetry["captured"]
    assert "events" not in manifest["telemetry"]
    assert manifest["speedup_pct"] == pytest.approx(
        100.0 * traced.speedup_over(base)
    )
    json.dumps(manifest)
