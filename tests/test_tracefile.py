"""Trace recording and bit-identical replay."""

import numpy as np
import pytest

from repro.core import PFMParams, SimConfig, simulate
from repro.workloads.astar import build_astar_workload
from repro.workloads.tracefile import ReplayWorkload, record_trace

WINDOW = 10_000
GRID = dict(grid_width=96, grid_height=96)


@pytest.fixture(scope="module")
def trace_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("traces") / "astar.npz"
    count = record_trace(build_astar_workload(**GRID), WINDOW, path)
    assert count == WINDOW
    return path


def test_replay_stream_matches_live(trace_path):
    live = build_astar_workload(**GRID).executor()
    replay = ReplayWorkload(build_astar_workload(**GRID), trace_path).executor()
    for live_dyn, replay_dyn in zip(live.run(500), replay.run(500)):
        assert live_dyn.pc == replay_dyn.pc
        assert live_dyn.mnemonic == replay_dyn.mnemonic
        assert live_dyn.taken == replay_dyn.taken
        assert live_dyn.mem_addr == replay_dyn.mem_addr
        assert live_dyn.dst_value == replay_dyn.dst_value


def test_replay_simulation_bit_identical_baseline(trace_path):
    live = simulate(
        build_astar_workload(**GRID), SimConfig(max_instructions=WINDOW)
    )
    replayed = simulate(
        ReplayWorkload(build_astar_workload(**GRID), trace_path),
        SimConfig(max_instructions=WINDOW),
    )
    assert replayed.cycles == live.cycles
    assert replayed.branch_mispredicts == live.branch_mispredicts


def test_replay_simulation_bit_identical_pfm(trace_path):
    """The replayer reproduces memory evolution, so even the component's
    run-ahead loads see identical values."""
    pfm = PFMParams(delay=0)
    live = simulate(
        build_astar_workload(**GRID),
        SimConfig(max_instructions=WINDOW, pfm=pfm),
    )
    replayed = simulate(
        ReplayWorkload(build_astar_workload(**GRID), trace_path),
        SimConfig(max_instructions=WINDOW, pfm=pfm),
    )
    assert replayed.cycles == live.cycles
    assert replayed.pfm_mispredicts == live.pfm_mispredicts
    assert replayed.agent_loads == live.agent_loads


def test_replay_halts_at_end(trace_path):
    replay = ReplayWorkload(build_astar_workload(**GRID), trace_path).executor()
    consumed = sum(1 for _ in replay.run(WINDOW + 500))
    assert consumed == WINDOW
    assert replay.halted


def test_version_check(tmp_path, trace_path):
    bad = tmp_path / "bad.npz"
    with np.load(trace_path) as data:
        arrays = {key: data[key] for key in data.files}
    arrays["version"] = np.int64(999)
    np.savez_compressed(bad, **arrays)
    with pytest.raises(ValueError, match="v999"):
        ReplayWorkload(build_astar_workload(**GRID), bad)


def test_trace_file_is_compact(trace_path):
    import os

    size = os.path.getsize(trace_path)
    assert size < WINDOW * 30  # well under 30 bytes/instruction
