"""End-to-end use-case checks: each paper workload's headline behaviour."""

import pytest

from repro.core import PFMParams, SimConfig, SuperscalarCore, simulate
from repro.workloads.bfs import build_bfs_workload
from repro.workloads.bwaves import build_bwaves_workload
from repro.workloads.graphs import road_graph
from repro.workloads.lbm import build_lbm_workload
from repro.workloads.leslie import build_leslie_workload
from repro.workloads.libquantum import build_libquantum_workload
from repro.workloads.milc import build_milc_workload

WINDOW = 15_000

_graph = road_graph(side=96)


def run(build, pfm=None, **kwargs):
    return simulate(
        build(), SimConfig(max_instructions=WINDOW, pfm=pfm, **kwargs)
    )


def bfs_build():
    return build_bfs_workload(graph=_graph)


# ---------------------------------------------------------------------- #
# bfs (Section 4.2)
# ---------------------------------------------------------------------- #

def test_bfs_mpki_collapses():
    baseline = run(bfs_build)
    custom = run(bfs_build, pfm=PFMParams(delay=0))
    assert baseline.mpki > 10
    assert custom.mpki < baseline.mpki / 4
    assert custom.ipc > baseline.ipc


def test_bfs_idealization_ordering():
    """Figure 12: perfBP < perfD$ < perfBP+D$; custom between."""
    baseline = run(bfs_build)
    perf_bp = run(bfs_build, perfect_branch_prediction=True)
    perf_d = run(bfs_build, perfect_dcache=True)
    both = run(bfs_build, perfect_branch_prediction=True, perfect_dcache=True)
    custom = run(bfs_build, pfm=PFMParams(delay=0))
    assert perf_bp.ipc < perf_d.ipc < both.ipc
    assert baseline.ipc < custom.ipc < both.ipc


def test_bfs_scope_scaling():
    """Figure 14: performance scales with the queue entries."""
    small = run(
        bfs_build,
        pfm=PFMParams(delay=4, component_overrides={"queue_entries": 4}),
    )
    large = run(
        bfs_build,
        pfm=PFMParams(delay=4, component_overrides={"queue_entries": 64}),
    )
    assert large.ipc > small.ipc


def test_bfs_component_issues_many_loads():
    core = SuperscalarCore(
        bfs_build(), SimConfig(max_instructions=WINDOW, pfm=PFMParams(delay=0))
    )
    stats = core.run()
    # T0-T3 load frontier, offsets, neighbours, and properties.
    assert stats.agent_loads > stats.loads / 2


# ---------------------------------------------------------------------- #
# prefetchers (Section 4.3)
# ---------------------------------------------------------------------- #

@pytest.mark.parametrize(
    "build",
    [
        build_libquantum_workload,
        build_bwaves_workload,
        build_lbm_workload,
        build_milc_workload,
        build_leslie_workload,
    ],
    ids=["libquantum", "bwaves", "lbm", "milc", "leslie"],
)
def test_prefetcher_speeds_up(build):
    baseline = run(build)
    custom = run(build, pfm=PFMParams(clk_ratio=4, width=1, delay=0))
    assert custom.ipc > baseline.ipc * 1.03
    assert custom.agent_prefetches > 100


def test_prefetcher_resistant_to_width():
    """Figure 17: W barely matters for prefetch-only use-cases."""
    narrow = run(build_libquantum_workload, pfm=PFMParams(width=1, delay=0))
    wide = run(build_libquantum_workload, pfm=PFMParams(width=4, delay=0))
    assert abs(narrow.ipc - wide.ipc) / wide.ipc < 0.25


def test_prefetcher_resistant_to_delay():
    near = run(build_libquantum_workload, pfm=PFMParams(width=1, delay=0))
    far = run(build_libquantum_workload, pfm=PFMParams(width=1, delay=8))
    assert far.ipc > near.ipc * 0.8


def test_prefetcher_never_stalls_fetch():
    stats = run(build_libquantum_workload, pfm=PFMParams(width=1, delay=0))
    assert stats.fetch_stall_pfm_cycles == 0  # no FST entries
    assert stats.pfm_predicted_branches == 0


def test_lbm_sets_never_partial():
    core = SuperscalarCore(
        build_lbm_workload(),
        SimConfig(max_instructions=WINDOW, pfm=PFMParams(width=1, delay=0)),
    )
    core.run()
    component = core.fabric.component
    issued = {site.issued for site in component.sites}
    staged = len(component._staged_set)
    # All sites aligned except for a partially-drained staged set.
    assert max(issued) - min(issued) <= 1 or staged > 0


def test_milc_adaptive_distance_engages():
    core = SuperscalarCore(
        build_milc_workload(),
        SimConfig(max_instructions=WINDOW, pfm=PFMParams(width=1, delay=0)),
    )
    core.run()
    controller = core.fabric.component.controller
    assert controller.adjustments > 0
