"""The registry layer: registration, lookup errors, project registries."""

import pytest

from repro.registry import (
    DuplicateNameError,
    Registry,
    RegistryError,
    UnknownNameError,
    build_workload,
    component_names,
    make_bitstream,
    make_predictor,
    make_prefetcher,
    predictor_names,
    prefetcher_names,
    workload_names,
)


# --------------------------------------------------------------------- #
# the generic mechanism
# --------------------------------------------------------------------- #

def test_register_and_get_roundtrip():
    reg = Registry("thing")

    @reg.register("alpha")
    def make_alpha():
        return "alpha!"

    assert reg.get("alpha") is make_alpha
    assert "alpha" in reg
    assert reg.names() == ("alpha",)
    assert len(reg) == 1


def test_decorator_returns_object_unchanged():
    reg = Registry("thing")

    class Widget:
        pass

    decorated = reg.register("widget")(Widget)
    assert decorated is Widget


def test_registration_order_is_iteration_order():
    reg = Registry("thing")
    for name in ("zebra", "apple", "mango"):
        reg.register(name)(object())
    assert reg.names() == ("zebra", "apple", "mango")
    assert list(reg) == ["zebra", "apple", "mango"]


def test_duplicate_name_rejected():
    reg = Registry("thing")
    reg.register("alpha")(object())
    with pytest.raises(DuplicateNameError, match="duplicate thing name 'alpha'"):
        reg.register("alpha")(object())


def test_invalid_names_rejected():
    reg = Registry("thing")
    with pytest.raises(RegistryError):
        reg.register("")
    with pytest.raises(RegistryError):
        reg.register(None)


def test_unknown_name_lists_valid_names():
    reg = Registry("thing")
    reg.register("alpha")(object())
    reg.register("beta")(object())
    with pytest.raises(UnknownNameError) as exc:
        reg.get("gamma")
    message = str(exc.value)
    assert "unknown thing 'gamma'" in message
    assert "alpha" in message
    assert "beta" in message


def test_unknown_name_suggests_near_misses():
    reg = Registry("thing")
    reg.register("libquantum")(object())
    reg.register("bwaves")(object())
    with pytest.raises(UnknownNameError, match="did you mean 'libquantum'"):
        reg.get("libquantun")


def test_registry_errors_are_value_errors():
    # Pre-registry callers catch ValueError for bad names; keep that.
    assert issubclass(RegistryError, ValueError)
    assert issubclass(UnknownNameError, RegistryError)
    assert issubclass(DuplicateNameError, RegistryError)


# --------------------------------------------------------------------- #
# the project registries
# --------------------------------------------------------------------- #

def test_all_nine_workloads_registered():
    assert workload_names() == (
        "astar", "astar-alt", "bfs-roads", "bfs-youtube",
        "libquantum", "bwaves", "lbm", "milc", "leslie",
    )


def test_component_registry_covers_bitstreams():
    names = component_names()
    for expected in (
        "astar-custom-bp", "astar-alt", "bfs-engine", "templated-runahead",
        "libquantum-prefetcher", "bwaves-prefetcher", "lbm-prefetcher",
        "milc-prefetcher", "leslie-prefetcher",
    ):
        assert expected in names


def test_predictor_registry():
    names = predictor_names()
    for expected in ("tagescl", "always-taken", "bimodal", "gshare"):
        assert expected in names
    predictor = make_predictor("always-taken")
    assert predictor.predict(0x1000) is True


def test_prefetcher_registry():
    assert set(prefetcher_names()) == {"nextline", "vldp"}
    nextline = make_prefetcher("nextline", degree=3)
    assert nextline.on_access(10, now=0) == [11, 12, 13]


def test_workload_unknown_name_suggestion():
    with pytest.raises(UnknownNameError, match="did you mean 'astar'"):
        build_workload("astr")


def test_make_bitstream_unknown_component():
    with pytest.raises(UnknownNameError, match="unknown component"):
        make_bitstream("bs", component="no-such-component", rst_entries=[])


def test_workload_builds_with_component_override():
    from repro.registry import COMPONENTS

    workload = build_workload("astar", component_factory="astar-alt")
    assert workload.bitstream is not None
    assert workload.bitstream.component_factory is COMPONENTS.get("astar-alt")
