"""Global timing invariants of the one-pass cycle engine.

These hold for any workload: retirement is in order and bounded by the
retire width, fetch is bounded by the fetch width, and per-instruction
stage timestamps are causally ordered.
"""

from collections import Counter

import repro.core.core as core_module
from repro.core import CoreParams, PFMParams, SimConfig, SuperscalarCore
from repro.workloads.astar import build_astar_workload
from repro.workloads.bfs import build_bfs_workload
from repro.workloads.graphs import road_graph

WINDOW = 8_000


class _InstrumentedCore(SuperscalarCore):
    """Records per-instruction stage timestamps."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.trace_rows = []

    def _process(self, dyn):
        fetch_before = self._fetch_cycle
        super()._process(dyn)
        self.trace_rows.append(
            (self._fetch_cycle, self._prev_retire)
        )


def run_instrumented(workload, pfm=None):
    core = _InstrumentedCore(
        workload, SimConfig(max_instructions=WINDOW, pfm=pfm)
    )
    core.run()
    return core


def check_invariants(core):
    params = CoreParams()
    retire_times = [r for _, r in core.trace_rows]
    fetch_times = [f for f, _ in core.trace_rows]

    # Retirement is monotonic non-decreasing (in-order retire).
    assert all(b >= a for a, b in zip(retire_times, retire_times[1:]))
    # No more than retire_width instructions share a retire cycle.
    per_cycle = Counter(retire_times)
    assert max(per_cycle.values()) <= params.retire_width
    # Fetch cursor never goes backwards.
    assert all(b >= a for a, b in zip(fetch_times, fetch_times[1:]))
    # Every instruction retires at or after it was fetched (plus depth).
    for fetch, retire in core.trace_rows:
        assert retire >= fetch + params.front_depth


def test_invariants_baseline_astar():
    check_invariants(run_instrumented(build_astar_workload()))


def test_invariants_pfm_astar():
    check_invariants(
        run_instrumented(build_astar_workload(), pfm=PFMParams(delay=4))
    )


def test_invariants_pfm_bfs():
    graph = road_graph(side=64)
    check_invariants(
        run_instrumented(build_bfs_workload(graph=graph), pfm=PFMParams(delay=0))
    )


def test_fetch_width_respected():
    core = run_instrumented(build_astar_workload())
    fetch_counts = Counter(f for f, _ in core.trace_rows)
    assert max(fetch_counts.values()) <= CoreParams().fetch_width


def test_cycles_bounded_by_width_floor():
    core = run_instrumented(build_astar_workload())
    floor = WINDOW // CoreParams().fetch_width
    assert core.stats.cycles >= floor


def test_structural_lower_bounds_hold():
    """Cycles can never undercut any single resource's service bound."""
    params = CoreParams()
    for pfm in (None, PFMParams(delay=0)):
        core = run_instrumented(build_astar_workload(), pfm=pfm)
        stats = core.stats
        ls_ops = stats.loads + stats.stores + stats.agent_loads
        assert stats.cycles >= stats.instructions / params.fetch_width
        assert stats.cycles >= ls_ops / params.num_ls_lanes
        assert stats.cycles >= stats.issued_ops / params.issue_width
        assert stats.cycles >= stats.instructions / params.retire_width
