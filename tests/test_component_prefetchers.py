"""Prefetch engines: distance control, stride/set/nest generation."""

from tests.pfm_harness import FakeFabric, enable, make_io, send_obs, step_component

from repro.pfm.component import RFTimings
from repro.pfm.components.prefetchers import (
    AdaptiveDistanceController,
    LbmPrefetcher,
    NestedLoopPrefetchEngine,
    StridePrefetchEngine,
)
from repro.pfm.snoop import SnoopKind
from repro.workloads.mem import MemoryImage


# ---------------------------------------------------------------------- #
# AdaptiveDistanceController
# ---------------------------------------------------------------------- #

def test_rate_mode_targets_lead_coverage():
    controller = AdaptiveDistanceController(
        mode="rate", lead_cycles=600, epoch_cycles=100, max_distance=96
    )
    # One retired instance every 10 cycles -> distance ~ 600/10 + min.
    retired = 0
    for epoch in range(1, 12):
        retired += 10
        controller.observe(now=epoch * 100, retired_total=retired)
    assert 55 <= controller.distance <= 96


def test_rate_mode_clamps_to_max():
    controller = AdaptiveDistanceController(
        mode="rate", lead_cycles=600, epoch_cycles=100, max_distance=32
    )
    retired = 0
    for epoch in range(1, 8):
        retired += 100
        controller.observe(now=epoch * 100, retired_total=retired)
    assert controller.distance == 32


def test_hillclimb_climbs_on_improvement():
    controller = AdaptiveDistanceController(
        mode="hillclimb", epoch_cycles=100, initial_distance=8, step=4
    )
    retired = 0
    rate = 5
    for epoch in range(1, 10):
        rate += 1  # monotonically improving throughput
        retired += rate
        controller.observe(now=epoch * 100, retired_total=retired)
    assert controller.distance > 8


def test_hillclimb_backs_off_on_degradation():
    controller = AdaptiveDistanceController(
        mode="hillclimb", epoch_cycles=100, initial_distance=20, step=4
    )
    retired = 0
    rates = [50, 50, 30, 20, 19, 19]  # collapse, then stabilize low
    for epoch, rate in enumerate(rates, start=1):
        retired += rate
        controller.observe(now=epoch * 100, retired_total=retired)
    # One exploratory climb (+step), then two degraded epochs back it off
    # and settle: net distance no higher than the single climb.
    assert controller._settled
    assert controller.distance <= 24


def test_unknown_mode_rejected():
    import pytest

    with pytest.raises(ValueError):
        AdaptiveDistanceController(mode="magic")


def test_epochs_are_time_based():
    controller = AdaptiveDistanceController(mode="rate", epoch_cycles=1000)
    controller.observe(now=10, retired_total=5)
    controller.observe(now=500, retired_total=50)
    assert controller._rate_ewma is None  # no epoch boundary crossed yet


# ---------------------------------------------------------------------- #
# StridePrefetchEngine
# ---------------------------------------------------------------------- #

def stride_setup(sites, set_mode=False, width=1):
    memory = MemoryImage()
    base = memory.allocate("data", 65536)
    cls = LbmPrefetcher if set_mode else StridePrefetchEngine
    component = cls(
        RFTimings(clk_ratio=4, width=width, delay=0),
        memory,
        {"sites": sites, "initial_distance": 8},
    )
    fabric = FakeFabric(memory)
    io = make_io(component, fabric)
    enable(fabric)
    return component, fabric, io, base


def test_stride_addresses_follow_pattern():
    component, fabric, io, base = stride_setup(
        [{"tag": "s", "stride": 16}]
    )
    send_obs(fabric, SnoopKind.DEST_VALUE, "base:s", value=base)
    step_component(component, fabric, io, cycles=10)
    addresses = [addr for _, addr, pf in fabric.loads if pf]
    assert addresses[:4] == [base, base + 16, base + 32, base + 48]


def test_stride_respects_distance():
    component, fabric, io, base = stride_setup([{"tag": "s", "stride": 8}])
    send_obs(fabric, SnoopKind.DEST_VALUE, "base:s", value=base)
    step_component(component, fabric, io, cycles=40)
    site = component.sites[0]
    assert site.issued == site.retired + component.controller.distance


def test_iteration_counter_advances_progress():
    component, fabric, io, base = stride_setup([{"tag": "s", "stride": 8}])
    send_obs(fabric, SnoopKind.DEST_VALUE, "base:s", value=base)
    step_component(component, fabric, io, cycles=40)
    issued_before = component.sites[0].issued
    send_obs(fabric, SnoopKind.DEST_VALUE, "iter:s", value=50)
    step_component(component, fabric, io, cycles=60)
    assert component.sites[0].retired == 50
    assert component.sites[0].issued > issued_before


def test_counter_is_monotonic_under_reordered_packets():
    component, fabric, io, base = stride_setup([{"tag": "s", "stride": 8}])
    send_obs(fabric, SnoopKind.DEST_VALUE, "base:s", value=base)
    send_obs(fabric, SnoopKind.DEST_VALUE, "iter:s", value=50)
    send_obs(fabric, SnoopKind.DEST_VALUE, "iter:s", value=30)  # stale
    step_component(component, fabric, io, cycles=4)
    assert component.sites[0].retired == 50


def test_offset_sites_share_base_snoop():
    component, fabric, io, base = stride_setup(
        [
            {"tag": "d+0", "stride": 144, "counter": "c", "offset": 0},
            {"tag": "d+64", "stride": 144, "counter": "c", "offset": 64},
        ]
    )
    send_obs(fabric, SnoopKind.DEST_VALUE, "base:d", value=base)
    step_component(component, fabric, io, cycles=6)
    addresses = sorted(addr for _, addr, _ in fabric.loads)[:2]
    assert addresses == [base, base + 64]


def test_set_mode_emits_complete_sets():
    sites = [{"tag": f"f{i}", "stride": 80, "counter": "lbm"} for i in range(4)]
    component, fabric, io, base = stride_setup(sites, set_mode=True, width=1)
    for i in range(4):
        send_obs(fabric, SnoopKind.DEST_VALUE, f"base:f{i}", value=base + i * 8192)
    step_component(component, fabric, io, cycles=50)
    # Every site's issue count advances in lockstep (sets, never partial).
    issued = {site.issued for site in component.sites}
    assert len(issued) == 1 and issued.pop() > 0


def test_prefetch_packets_marked_prefetch():
    component, fabric, io, base = stride_setup([{"tag": "s", "stride": 8}])
    send_obs(fabric, SnoopKind.DEST_VALUE, "base:s", value=base)
    step_component(component, fabric, io, cycles=5)
    assert fabric.loads and all(pf for _, _, pf in fabric.loads)


# ---------------------------------------------------------------------- #
# NestedLoopPrefetchEngine
# ---------------------------------------------------------------------- #

def nest_setup():
    memory = MemoryImage()
    base = memory.allocate("A", 65536)
    component = NestedLoopPrefetchEngine(
        RFTimings(clk_ratio=4, width=2, delay=0),
        memory,
        {
            "groups": [
                {
                    "extents": [1 << 20, 3, 4],
                    "sites": [{"tag": "A", "coeffs": [96, 32, 8]}],
                }
            ],
            "initial_distance": 16,
        },
    )
    fabric = FakeFabric(memory)
    io = make_io(component, fabric)
    enable(fabric)
    send_obs(fabric, SnoopKind.DEST_VALUE, "base:A", value=base)
    return component, fabric, io, base


def test_nest_walks_counters_correctly():
    component, fabric, io, base = nest_setup()
    step_component(component, fabric, io, cycles=20)
    addresses = [addr - base for _, addr, _ in fabric.loads]
    # flat order (i=0): (j,k) = (0,0),(0,1),(0,2),(0,3),(1,0)...
    expected = [0, 8, 16, 24, 32, 40, 48, 56, 64, 72, 80, 88, 96]
    assert addresses[: len(expected)] == expected


def test_nest_progress_follows_counter():
    component, fabric, io, _ = nest_setup()
    step_component(component, fabric, io, cycles=20)
    nest, sites = component.groups[0]
    assert nest.flat == sites[0].retired + component.controllers[0].distance
    send_obs(fabric, SnoopKind.DEST_VALUE, "iter:A", value=10)
    step_component(component, fabric, io, cycles=20)
    assert nest.flat == 10 + component.controllers[0].distance


def test_structures_report_sites():
    component, _, _, _ = nest_setup()
    structure = component.structure()
    assert structure["fsm_states"] > 0
    assert structure["adders"] > 0
