"""The §2.4 non-stalling Fetch Agent design (fetch_policy="proceed")."""

import pytest

from repro.core import PFMParams, SimConfig, simulate
from repro.pfm.fetch_agent import FetchAgent
from repro.workloads.astar import build_astar_workload

WINDOW = 12_000


def run(policy, clk=4, width=4):
    return simulate(
        build_astar_workload(grid_width=128, grid_height=128),
        SimConfig(
            max_instructions=WINDOW,
            pfm=PFMParams(
                clk_ratio=clk, width=width, delay=0, fetch_policy=policy
            ),
        ),
    )


def test_policy_validation():
    with pytest.raises(ValueError):
        PFMParams(fetch_policy="yolo")


def test_proceed_never_stalls_fetch():
    stats = run("proceed")
    assert stats.fetch_stall_pfm_cycles == 0
    assert stats.pfm_fallback_predictions > 0  # late packets skipped


def test_stall_supplies_more_predictions():
    stall = run("stall")
    proceed = run("proceed")
    assert stall.pfm_predicted_branches > proceed.pfm_predicted_branches
    # Waiting for an accurate component pays off at high bandwidth.
    assert stall.ipc > proceed.ipc


def test_proceed_still_improves_over_baseline():
    baseline = simulate(
        build_astar_workload(grid_width=128, grid_height=128),
        SimConfig(max_instructions=WINDOW),
    )
    proceed = run("proceed")
    assert proceed.ipc > baseline.ipc


def test_proceed_protects_under_starvation():
    """At clk8_w1 the stalling design flirts with slowdowns; the
    non-stalling design removes the fetch-stall component of that loss
    (the squash/squash-done sync overhead remains in both designs)."""
    baseline = simulate(
        build_astar_workload(grid_width=128, grid_height=128),
        SimConfig(max_instructions=WINDOW),
    )
    stall = run("stall", clk=8, width=1)
    proceed = run("proceed", clk=8, width=1)
    assert proceed.fetch_stall_pfm_cycles == 0
    assert proceed.ipc >= stall.ipc
    assert proceed.ipc > baseline.ipc * 0.85


def test_only_ready_pop_leaves_future_packets():
    agent = FetchAgent(queue_size=8, clk_ratio=4, width=4)
    agent.push(True, ready=100, tag="w")
    assert agent.try_pop("w", fetch_time=50, only_ready=True) is None
    assert agent.pending_count() == 1  # left in place
    result = agent.try_pop("w", fetch_time=150, only_ready=True)
    assert result == (True, 150)
