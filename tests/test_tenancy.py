"""Multi-tenant fabric: slots, partitioned tables, scheduler, oracle.

Four layers of assertions, mirroring the tentpole's claims:

* **Unit** — :class:`~repro.pfm.tenancy.TenantSpec` parsing/validation,
  partitioned snoop-table dispatch (slot-tagged hits, misses, capacity
  eviction, overlapping PCs across tenants), and the
  :class:`~repro.pfm.tenancy.FabricScheduler` arbitration contract
  (single-slot pass-through, weighted grants, priority preemption with
  per-tenant stall attribution).
* **Wiring** — ``attach_ports`` re-attachment is idempotent (stale hooks
  detach, foreign agents still raise) and ``TimedQueue`` diagnostics
  carry the owning tenant's label.
* **Oracle** — an observe-only co-tenant leaves the primary tenant's
  ``arch_digest`` byte-identical while seeing the full mirrored
  observation stream; faults + recovery on slot 0 with a live neighbour
  stay architecturally invisible and never touch the neighbour.
* **Determinism** — a two-tenant sweep payload is byte-identical across
  ``SweepPool`` worker counts.
"""

from __future__ import annotations

import dataclasses
from types import SimpleNamespace

import pytest

from repro.core import PFMParams, SimConfig, SuperscalarCore, simulate
from repro.core.stats import SimStats
from repro.core.watchdog import RecoveryPolicy, WatchdogParams
from repro.experiments.chaos import campaign_recovery
from repro.experiments.faults import campaign_watchdog
from repro.faults import BUILTIN_PLANS, check_equivalence
from repro.pfm.queues import QueueFullError, TimedQueue
from repro.pfm.snoop import RetireSnoopTable, RSTEntry, SnoopKind
from repro.pfm.tenancy import (
    PRIORITY_CLASSES,
    FabricScheduler,
    PartitionedRST,
    TenantSpec,
    _evict_to_capacity,
    parse_tenant_spec,
    slot_params,
)
from repro.workloads.astar import build_astar_workload

WINDOW = 10_000

INTROSPECT = (parse_tenant_spec("introspect"),)


def astar_stats(pfm: PFMParams | None = None,
                window: int = WINDOW) -> SimStats:
    workload = build_astar_workload(grid_width=64, grid_height=64)
    return simulate(workload, SimConfig(max_instructions=window, pfm=pfm))


def make_core(pfm: PFMParams) -> SuperscalarCore:
    workload = build_astar_workload(grid_width=64, grid_height=64)
    return SuperscalarCore(workload, SimConfig(max_instructions=1_000, pfm=pfm))


# ---------------------------------------------------------------------- #
# TenantSpec parsing and validation
# ---------------------------------------------------------------------- #


def test_parse_tenant_spec_defaults_to_background():
    spec = parse_tenant_spec("introspect")
    assert spec.component == "introspect"
    assert spec.priority == PRIORITY_CLASSES["background"]


@pytest.mark.parametrize("text,priority", [
    ("introspect:high", 0),
    ("introspect:normal", 1),
    ("introspect:background", 2),
    ("introspect:7", 7),
])
def test_parse_tenant_spec_priorities(text, priority):
    assert parse_tenant_spec(text).priority == priority


def test_parse_tenant_spec_rejects_garbage():
    with pytest.raises(ValueError, match="high/normal/background"):
        parse_tenant_spec("introspect:urgent")
    with pytest.raises(ValueError, match="empty component"):
        parse_tenant_spec(":high")


def test_tenant_spec_validation():
    with pytest.raises(ValueError, match="clk_ratio"):
        TenantSpec(component="x", clk_ratio=0)
    with pytest.raises(ValueError, match="width"):
        TenantSpec(component="x", width=0)
    with pytest.raises(ValueError, match="priority"):
        TenantSpec(component="x", priority=-1)
    with pytest.raises(ValueError, match="port option"):
        TenantSpec(component="x", port="portXYZ")
    with pytest.raises(ValueError, match="rst_capacity"):
        TenantSpec(component="x", rst_capacity=0)


def test_slot_params_inherits_budgets_never_faults():
    pfm = PFMParams(
        clk_ratio=2, width=2, delay=1, queue_size=16,
        watchdog=campaign_watchdog(),
        fault_plan=BUILTIN_PLANS["dead-component"],
        recovery=campaign_recovery(),
    )
    spec = TenantSpec(component="introspect", queue_size=4)
    params = slot_params(pfm, spec)
    # Budgets: explicit spec fields win, None inherits the primary.
    assert params.queue_size == 4
    assert (params.clk_ratio, params.width, params.delay) == (2, 2, 1)
    # Faults, recovery, and watchdog thresholds never propagate: the
    # co-tenant gets the stock (inert) policies, not the campaign ones.
    assert params.fault_plan is None
    assert params.recovery == RecoveryPolicy()
    assert params.recovery != campaign_recovery()
    assert params.watchdog == WatchdogParams()
    assert params.watchdog != campaign_watchdog()


# ---------------------------------------------------------------------- #
# partitioned snoop tables
# ---------------------------------------------------------------------- #


def _fake_slot(index: int, priority: int, entries) -> SimpleNamespace:
    return SimpleNamespace(
        index=index,
        priority=priority,
        rst=RetireSnoopTable(list(entries)),
        snoop_hits=0,
    )


def _rst(pc: int, tag: str) -> RSTEntry:
    return RSTEntry(pc=pc, kind=SnoopKind.DEST_VALUE, tag=tag)


def test_partitioned_table_tags_hits_with_slot():
    primary = _fake_slot(0, 0, [_rst(0x40, "a"), _rst(0x44, "b")])
    probe = _fake_slot(1, 2, [_rst(0x48, "p")])
    table = PartitionedRST([primary, probe])

    assert len(table) == 3
    hit = table.lookup_counted(0x48)
    assert hit is not None and hit.slot_index == 1 and hit.tag == "p"
    assert probe.snoop_hits == 1 and primary.snoop_hits == 0
    assert table.lookup(0x999) is None
    table.lookup_counted(0x999)
    assert table.misses == 1


def test_partitioned_table_overlapping_pcs_resolve_by_priority():
    primary = _fake_slot(0, 0, [_rst(0x40, "primary")])
    probe = _fake_slot(1, 2, [_rst(0x40, "mirror")])
    table = PartitionedRST([probe, primary])  # registration order irrelevant

    hit = table.lookup_counted(0x40)
    assert hit.slot_index == 0 and hit.tag == "primary"
    assert [o.tag for o in hit.others] == ["mirror"]
    # Non-exclusive retire-side observation: both slots count the hit.
    assert primary.snoop_hits == 1 and probe.snoop_hits == 1


def test_duplicate_pc_within_one_slot_still_raises():
    with pytest.raises(ValueError, match="duplicate"):
        RetireSnoopTable([_rst(0x40, "a"), _rst(0x40, "b")])


def test_evict_to_capacity_keeps_roi_markers():
    entries = [
        RSTEntry(pc=0x10, kind=SnoopKind.ROI_BEGIN, tag="roi:on"),
        _rst(0x20, "a"),
        _rst(0x24, "b"),
        _rst(0x28, "c"),
        RSTEntry(pc=0x30, kind=SnoopKind.ROI_END, tag="roi:off"),
    ]
    survivors, evicted = _evict_to_capacity(entries, 3, keep_roi=True)
    assert evicted == 2
    kinds = [e.kind for e in survivors]
    assert SnoopKind.ROI_BEGIN in kinds and SnoopKind.ROI_END in kinds
    assert [e.tag for e in survivors] == ["roi:on", "a", "roi:off"]
    # No capacity -> untouched.
    assert _evict_to_capacity(entries, None, keep_roi=True) == (entries, 0)


def test_tenant_rst_capacity_reaches_the_slot():
    pfm = PFMParams(tenants=(
        TenantSpec(component="introspect", rst_capacity=2),
    ))
    fabric = make_core(pfm).fabric
    probe = fabric.slots[1]
    assert len(probe.rst.entries) == 2
    assert probe.rst_evictions > 0
    # ROI markers survived the eviction (the probe must still arm).
    kinds = {e.kind for e in probe.rst.entries}
    assert SnoopKind.ROI_BEGIN in kinds


# ---------------------------------------------------------------------- #
# the contention-aware scheduler
# ---------------------------------------------------------------------- #


def _sched_slot(priority: int, width: int = 2) -> SimpleNamespace:
    return SimpleNamespace(
        priority=priority,
        timings=SimpleNamespace(width=width),
        sched_debt=0,
        sched_stall_cycles=0,
        sched_preemptions=0,
    )


def test_scheduler_single_slot_is_pass_through():
    scheduler = FabricScheduler()
    slot = _sched_slot(priority=0)
    scheduler.register(slot)
    for t in (0, 7, 7, 7, 7, 7):  # same-cycle floods included
        assert scheduler.grant_obs(slot, t) == t
    assert scheduler.stall_cycles == 0 and scheduler.preemptions == 0


def test_scheduler_weights_background_to_one_grant_per_cycle():
    scheduler = FabricScheduler()
    primary, probe = _sched_slot(0, width=2), _sched_slot(2, width=1)
    scheduler.register(primary)
    scheduler.register(probe)
    # Background tenant: one grant per contested cycle, then next cycle.
    assert scheduler.grant_obs(probe, 100) == 100
    assert scheduler.grant_obs(probe, 100) == 101
    assert probe.sched_stall_cycles == 1
    # Top-priority tenant may fill the whole cycle (weight == cap == 2).
    assert scheduler.grant_obs(primary, 200) == 200
    assert scheduler.grant_obs(primary, 200) == 200
    assert primary.sched_stall_cycles == 0


def test_scheduler_priority_preemption_debits_the_victim():
    scheduler = FabricScheduler()
    primary, probe = _sched_slot(0, width=1), _sched_slot(2, width=1)
    scheduler.register(primary)
    scheduler.register(probe)
    assert scheduler.grant_obs(probe, 100) == 100  # fills the cycle (cap 1)
    # The primary preempts rather than waiting behind the probe.
    assert scheduler.grant_obs(primary, 100) == 100
    assert scheduler.preemptions == 1 and probe.sched_preemptions == 1
    assert probe.sched_debt == 1
    # The victim's *next* request pays the debt.
    assert scheduler.grant_obs(probe, 200) == 201
    assert probe.sched_debt == 0 and probe.sched_stall_cycles == 1


# ---------------------------------------------------------------------- #
# wiring: attach_ports idempotency and queue owner labels
# ---------------------------------------------------------------------- #


def test_attach_ports_reattachment_is_idempotent():
    core = make_core(PFMParams())
    fabric, ctx = core.fabric, core.ctx
    ports = (ctx.fetch_port, ctx.execute_port, ctx.retire_port)
    before = tuple(port.agent for port in ports)
    assert all(agent is not None for agent in before)

    # Re-attaching the same fabric replaces its own stale hooks.
    fabric.attach_ports(*ports)
    after = tuple(port.agent for port in ports)
    assert all(agent is not None for agent in after)
    assert all(a is not b for a, b in zip(after, before))

    # A foreign agent on a port still raises — one context at a time.
    ctx.fetch_port.detach()
    ctx.fetch_port.attach(object())
    with pytest.raises(RuntimeError, match="already attached"):
        fabric.attach_ports(*ports)


def test_timed_queue_diagnostics_carry_owner_label():
    anonymous = TimedQueue("ObsQ-R", capacity=1)
    owned = TimedQueue("ObsQ-R@1", capacity=1, owner="slot1:introspect")
    for queue in (anonymous, owned):
        queue.push(0, "x")
    with pytest.raises(QueueFullError) as anon_err:
        anonymous.push(1, "y")
    with pytest.raises(QueueFullError) as owned_err:
        owned.push(1, "y")
    assert "ObsQ-R:" in str(anon_err.value)
    assert "ObsQ-R@1[slot1:introspect]:" in str(owned_err.value)


def test_multi_tenant_queues_are_suffixed_and_owned():
    fabric = make_core(PFMParams(tenants=INTROSPECT)).fabric
    stats = fabric.queue_stats()
    assert "ObsQ-R" in stats and "ObsQ-R@1" in stats
    assert fabric.slots[1].obs_q.owner == "slot1:introspect"
    # Slot 0 keeps the legacy queue names (golden keys), owner included
    # only in diagnostics.
    assert fabric.slots[0].obs_q.name == "ObsQ-R"
    assert fabric.slots[0].obs_q.owner == "slot0:astar-custom-bp"


# ---------------------------------------------------------------------- #
# the observe-only oracle (PR 2's equivalence check, multi-tenant form)
# ---------------------------------------------------------------------- #


@pytest.fixture(scope="module")
def solo() -> SimStats:
    return astar_stats(PFMParams())


@pytest.fixture(scope="module")
def cohosted() -> SimStats:
    return astar_stats(PFMParams(tenants=INTROSPECT))


def test_observer_tenant_is_architecturally_invisible(solo, cohosted):
    verdict = check_equivalence(solo, cohosted)
    assert verdict.ok, verdict.reason
    assert cohosted.arch_digest == solo.arch_digest


def test_observer_tenant_sees_the_mirrored_stream(solo, cohosted):
    tenants = cohosted.tenant_stats
    assert set(tenants) == {"0:astar-custom-bp", "1:introspect"}
    probe = tenants["1:introspect"]
    # The probe observed the same retired stream the primary built.
    assert probe["obs_pushes"] == tenants["0:astar-custom-bp"]["obs_pushes"]
    assert probe["obs_pushes"] > 0
    # ...without ever intervening.
    assert probe["predictions_supplied"] == 0
    assert probe["loads_issued"] == 0
    # Contention is attributed to the background tenant, not the primary.
    assert tenants["0:astar-custom-bp"]["sched_stall_cycles"] == 0
    # Single-tenant runs keep the seed-era export shape.
    assert solo.tenant_stats == {}
    assert solo.sched_obs_stall_cycles == 0


def test_overlapping_pcs_share_retirement_not_fetch(cohosted):
    # Every probe RST pc overlaps the primary's; the retire side is
    # non-exclusive, so no fetch-override conflicts can arise from an
    # FST-free observer.
    assert cohosted.fetch_override_conflicts == 0


# ---------------------------------------------------------------------- #
# per-slot recovery: kill one tenant, the neighbour never notices
# ---------------------------------------------------------------------- #


def test_per_slot_recovery_leaves_neighbour_untouched(solo):
    pfm = PFMParams(
        watchdog=campaign_watchdog(),
        fault_plan=BUILTIN_PLANS["dead-component"],
        recovery=campaign_recovery(),
        tenants=INTROSPECT,
    )
    stats = astar_stats(pfm)
    # Slot 0 died and was hot-reloaded back to life...
    assert stats.reconfigs >= 1
    assert stats.fabric_state == "active"
    # ...architecturally invisibly (recovery never buys IPC with state).
    assert check_equivalence(solo, stats).ok
    # The neighbour was never drained or reloaded, and its view of the
    # retired stream kept flowing throughout.
    probe = stats.tenant_stats["1:introspect"]
    assert probe["reconfigs"] == 0
    assert probe["watchdog_dead_declarations"] == 0
    assert probe["enabled"] == 1
    assert probe["obs_pushes"] > 0


def test_scheduled_swap_with_neighbour_stays_invisible(solo):
    pfm = PFMParams(
        recovery=RecoveryPolicy(scheduled_reload_at=WINDOW // 4),
        tenants=INTROSPECT,
    )
    stats = astar_stats(pfm)
    assert stats.reconfigs == 1
    assert check_equivalence(solo, stats).ok
    assert stats.tenant_stats["1:introspect"]["reconfigs"] == 0


# ---------------------------------------------------------------------- #
# determinism: two-tenant sweeps are byte-identical across worker counts
# ---------------------------------------------------------------------- #


def test_two_tenant_sweep_deterministic_across_jobs(tmp_path):
    from repro.experiments.pool import SweepPool
    from repro.experiments.sweep import payload_json, run_sweep

    kwargs = dict(
        window=2_000,
        workloads=("astar",),
        configs=("clk4_w1, delay0",),
        tenants=INTROSPECT,
    )
    _, serial = run_sweep(pool=SweepPool(jobs=1), **kwargs)
    _, fanned = run_sweep(pool=SweepPool(jobs=4), **kwargs)
    assert payload_json(serial) == payload_json(fanned)
    label = "astar [clk4_w1, delay0]"
    assert serial["points"][label]["oracle_ok"] is True
    assert serial["tenants"] == ["introspect:background"]
    # The tenanted point's key differs from its solo twin's (the tenant
    # tuple is part of the content hash).
    assert (serial["points"][label]["key"]
            != serial["points"][f"{label} [solo]"]["key"])


def test_tenants_survive_dataclass_round_trips():
    pfm = PFMParams(tenants=INTROSPECT)
    # asdict (content hashing) and replace (point construction) both work.
    flat = dataclasses.asdict(pfm)
    assert flat["tenants"][0]["component"] == "introspect"
    again = dataclasses.replace(pfm, tenants=())
    assert again.tenants == ()
    assert "introspect" in pfm.label() and "introspect" not in again.label()
