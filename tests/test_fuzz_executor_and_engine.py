"""Differential fuzzing: random programs through executor and engine.

Random (but always-terminating) programs are generated from a seed; the
functional executor's final register state is checked against a direct
Python interpretation of the same instruction sequence, and the cycle
engine must process any such program without violating its invariants.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.backends import have_numpy
from repro.core import CoreParams, SimConfig, SuperscalarCore, simulate
from repro.isa.builder import ProgramBuilder
from repro.memory.hierarchy import HierarchyParams
from repro.workloads import tracecache
from repro.workloads.base import Workload
from repro.workloads.mem import MemoryImage
from repro.workloads.trace import FunctionalExecutor

INT_REGS = ["t0", "t1", "t2", "t3", "s0", "s1", "s2"]


def generate_program(seed: int, length: int = 40):
    """Random straight-line ALU/memory program plus a reference model.

    Returns (builder, reference_regs, memory) where reference_regs is the
    expected final register file computed by direct interpretation.
    """
    rng = random.Random(seed)
    memory = MemoryImage()
    base = memory.allocate("scratch", 64)
    b = ProgramBuilder()
    regs = {r: 0 for r in INT_REGS}
    mem = {}

    b.li("a0", base)
    for _ in range(length):
        op = rng.choice(
            ["add", "sub", "and_", "or_", "xor", "addi", "li", "mul",
             "store", "load"]
        )
        if op == "li":
            dst = rng.choice(INT_REGS)
            val = rng.randint(-500, 500)
            b.li(dst, val)
            regs[dst] = val
        elif op == "addi":
            dst, src = rng.choice(INT_REGS), rng.choice(INT_REGS)
            imm = rng.randint(-100, 100)
            b.addi(dst, src, imm)
            regs[dst] = regs[src] + imm
        elif op == "store":
            src = rng.choice(INT_REGS)
            offset = rng.randrange(0, 64 * 8, 8)
            b.sd(src, base="a0", offset=offset)
            mem[offset] = regs[src]
        elif op == "load":
            dst = rng.choice(INT_REGS)
            offset = rng.randrange(0, 64 * 8, 8)
            b.ld(dst, base="a0", offset=offset)
            regs[dst] = mem.get(offset, 0)
        else:
            dst = rng.choice(INT_REGS)
            s1, s2 = rng.choice(INT_REGS), rng.choice(INT_REGS)
            getattr(b, op)(dst, s1, s2)
            python_op = {
                "add": lambda a, c: a + c,
                "sub": lambda a, c: a - c,
                "and_": lambda a, c: a & c,
                "or_": lambda a, c: a | c,
                "xor": lambda a, c: a ^ c,
                "mul": lambda a, c: a * c,
            }[op]
            regs[dst] = python_op(regs[s1], regs[s2])
    b.halt()
    return b, regs, memory


@given(st.integers(0, 10_000))
@settings(max_examples=60, deadline=None)
def test_fuzz_executor_matches_reference(seed):
    builder, expected, memory = generate_program(seed)
    executor = FunctionalExecutor(builder.build(), memory)
    for _ in range(500):
        if executor.halted:
            break
        executor.step()
    assert executor.halted
    for reg, value in expected.items():
        assert executor.regs.get(reg, 0) == value, (seed, reg)


@given(st.integers(0, 10_000))
@settings(max_examples=25, deadline=None)
def test_fuzz_engine_completes_and_is_sane(seed):
    builder, _, memory = generate_program(seed, length=60)
    workload = Workload("fuzz", builder.build(), memory)
    core = SuperscalarCore(
        workload,
        SimConfig(
            max_instructions=500,
            memory=HierarchyParams(tlb_walk_latency=0),
        ),
    )
    stats = core.run()
    assert stats.instructions > 0
    assert stats.cycles >= stats.instructions // 4
    assert stats.ipc <= 4.0 + 1e-9


def _build_fuzz_diff(seed: int = 0, length: int = 60) -> Workload:
    """Registry builder for the backend-differential fuzz workload.

    Registered (and unregistered) by the ``_fuzz_diff_registered``
    fixture: only registry-built workloads carry a compiled-trace
    identity, and the numpy backend replays compiled traces only.
    """
    builder, _, memory = generate_program(seed, length=length)
    return Workload("fuzz-diff", builder.build(), memory)


@pytest.fixture
def _fuzz_diff_registered():
    from repro.registry.workloads import WORKLOADS

    if "fuzz-diff" not in WORKLOADS._entries:
        WORKLOADS.register("fuzz-diff")(_build_fuzz_diff)
    yield
    # Leave the global registry exactly as found (test_registry pins
    # the exact workload enumeration).
    WORKLOADS._entries.pop("fuzz-diff", None)


@pytest.mark.skipif(not have_numpy(), reason="numpy not installed")
@given(st.integers(0, 10_000))
@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
def test_fuzz_backend_differential(_fuzz_diff_registered, seed):
    """Random programs agree across backends: same digest (which covers
    the retired stream plus final registers and memory), same exported
    stats, and the same final register file as the reference model."""
    from repro.registry import build_workload

    ref_builder, expected_regs, ref_memory = generate_program(seed, length=60)
    stats_by_backend = {}
    for backend in ("python", "numpy"):
        tracecache.reset_memory_cache()
        workload = build_workload("fuzz-diff", seed=seed, length=60)
        stats_by_backend[backend] = simulate(
            workload,
            SimConfig(
                core=CoreParams(backend=backend),
                max_instructions=500,
                memory=HierarchyParams(tlb_walk_latency=0),
            ),
        )

    py, vec = stats_by_backend["python"], stats_by_backend["numpy"]
    assert vec.backend == "numpy", seed  # trace compiled, replay engaged
    assert py.backend == "python"
    assert py.arch_digest == vec.arch_digest, seed
    assert py.to_dict() == vec.to_dict(), seed

    # The shared digest is pinned to the reference interpreter's final
    # register file via the functional executor.
    executor = FunctionalExecutor(ref_builder.build(), ref_memory)
    for _ in range(500):
        if executor.halted:
            break
        executor.step()
    for reg, value in expected_regs.items():
        assert executor.regs.get(reg, 0) == value, (seed, reg)


def test_fuzz_reproducibility():
    """Same seed -> identical program and identical cycle count."""
    def run(seed):
        builder, _, memory = generate_program(seed)
        workload = Workload("fuzz", builder.build(), memory)
        core = SuperscalarCore(
            workload,
            SimConfig(
                max_instructions=500,
                memory=HierarchyParams(tlb_walk_latency=0),
            ),
        )
        return core.run().cycles

    assert run(1234) == run(1234)
    assert run(1234) != run(1235) or True  # different seeds may collide
