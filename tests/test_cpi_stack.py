"""Counterfactual CPI stacks."""

import pytest

from repro.core import PFMParams
from repro.core.analysis import CPIStack, compare_stacks, cpi_stack
from repro.workloads.astar import build_astar_workload
from repro.workloads.bfs import build_bfs_workload
from repro.workloads.graphs import road_graph

WINDOW = 10_000

_graph = road_graph(side=64)


def astar():
    return build_astar_workload(grid_width=128, grid_height=128)


def bfs():
    return build_bfs_workload(graph=_graph)


def test_stack_components_sum_to_total():
    stack = cpi_stack(astar, window=WINDOW)
    total = (
        stack.compute_cycles
        + stack.branch_cycles
        + stack.memory_cycles
        + stack.overlap_cycles
    )
    assert total == pytest.approx(stack.total_cycles, rel=0.02)


def test_astar_stack_is_branch_dominated():
    stack = cpi_stack(astar, window=WINDOW)
    assert stack.component("branch") > stack.component("memory")
    assert stack.component("branch") > 0.3


def test_bfs_stack_is_memory_dominated():
    stack = cpi_stack(bfs, window=WINDOW)
    assert stack.component("memory") > stack.component("branch")


def test_pfm_collapses_astar_branch_slice():
    base = cpi_stack(astar, window=WINDOW)
    treated = cpi_stack(astar, window=WINDOW, pfm=PFMParams(delay=0))
    assert treated.component("branch") < base.component("branch") / 3
    assert treated.cpi < base.cpi


def test_render_and_compare_outputs():
    stack = CPIStack(
        instructions=1000,
        total_cycles=4000,
        compute_cycles=1000,
        branch_cycles=1500,
        memory_cycles=1000,
        overlap_cycles=500,
    )
    text = stack.render("demo")
    assert "demo" in text and "branch" in text and "#" in text
    comparison = compare_stacks(stack, stack)
    assert "reduction" in comparison
    assert "+0%" in comparison or "-0%" in comparison


def test_component_lookup_validates():
    stack = cpi_stack(astar, window=4000)
    with pytest.raises(KeyError):
        stack.component("alignment")
