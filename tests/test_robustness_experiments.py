"""Robustness sweep experiments (extension)."""

from repro.experiments.robustness import (
    astar_input_robustness,
    astar_pattern_robustness,
    bfs_graph_robustness,
)

WINDOW = 10_000


def test_alt_degrades_with_table_capacity():
    result = astar_input_robustness(window=WINDOW)
    main = result.value("main (no tables)")
    big = result.value("alt 16384-entry tables")
    tiny = result.value("alt 64-entry tables")
    assert main > big  # load-based beats table-mimicking
    assert tiny < big - 20  # aliasing destroys the small-table variant


def test_pattern_robustness_reports_both_patterns():
    result = astar_pattern_robustness(window=WINDOW)
    assert result.value("random speedup") > 0
    assert result.value("maze speedup") > 0
    # Maze maps are friendlier to the baseline predictor.
    assert result.value("maze baseline MPKI") < result.value(
        "random baseline MPKI"
    )


def test_graph_robustness_and_nonstalling_remedy():
    result = bfs_graph_robustness(window=WINDOW)
    assert result.value("roads speedup") > 50
    # Power-law graphs give the component far less headroom...
    assert result.value("youtube speedup") < result.value("roads speedup")
    # ...and the non-stalling Fetch Agent never loses to the stalling one
    # in that regime.
    assert (
        result.value("youtube speedup (non-stalling §2.4)")
        >= result.value("youtube speedup") - 1.0
    )
