"""Graph generators and the BFS reference oracle."""

from repro.workloads.graphs import (
    CSRGraph,
    powerlaw_graph,
    reference_bfs,
    road_graph,
)


def check_csr_invariants(graph: CSRGraph):
    assert len(graph.offsets) == graph.num_nodes + 1
    assert graph.offsets[0] == 0
    assert graph.offsets[-1] == len(graph.neighbors)
    assert all(
        graph.offsets[i] <= graph.offsets[i + 1] for i in range(graph.num_nodes)
    )
    assert all(0 <= v < graph.num_nodes for v in graph.neighbors)


def test_road_graph_csr_invariants():
    check_csr_invariants(road_graph(side=24))


def test_powerlaw_graph_csr_invariants():
    check_csr_invariants(powerlaw_graph(num_nodes=500))


def test_road_graph_degrees_small():
    graph = road_graph(side=32)
    degrees = [graph.degree(u) for u in range(graph.num_nodes)]
    assert max(degrees) <= 8
    assert sum(degrees) / len(degrees) < 5


def test_powerlaw_graph_heavy_tail():
    graph = powerlaw_graph(num_nodes=2000, edges_per_node=4)
    degrees = sorted((graph.degree(u) for u in range(graph.num_nodes)), reverse=True)
    # Hubs should be much larger than the median degree.
    assert degrees[0] > 5 * degrees[len(degrees) // 2]


def test_graphs_undirected():
    graph = road_graph(side=16)
    for u in range(graph.num_nodes):
        for v in graph.neighbors_of(u):
            assert u in graph.neighbors_of(v)


def test_graphs_deterministic():
    a = road_graph(side=16, seed=3)
    b = road_graph(side=16, seed=3)
    assert a.offsets == b.offsets and a.neighbors == b.neighbors
    c = road_graph(side=16, seed=4)
    assert a.neighbors != c.neighbors


def test_reference_bfs_small_known_graph():
    # 0 - 1 - 2, 0 - 3 (CSR by hand)
    graph = CSRGraph(
        num_nodes=4,
        offsets=[0, 2, 4, 5, 6],
        neighbors=[1, 3, 0, 2, 1, 0],
    )
    parent = reference_bfs(graph, source=0)
    assert parent[0] == 0
    assert parent[1] == 0
    assert parent[3] == 0
    assert parent[2] == 1


def test_reference_bfs_unreachable_nodes_stay_unvisited():
    graph = CSRGraph(num_nodes=3, offsets=[0, 1, 2, 2], neighbors=[1, 0])
    parent = reference_bfs(graph, source=0)
    assert parent[2] == -1
