"""Squash/squash-done protocol edge cases (§2.1, §4.1.2).

Two situations the integration suite never lines up on its own: a squash
arriving while ObsQ-R is completely full, and a second squash issued
before the first squash-done has elapsed.  Squash notifications travel
out-of-band (they are not ObsQ-R entries), so back-pressure must never
delay or drop them, and the handshake must serialize cleanly when
squashes pile up.
"""

from __future__ import annotations

import pytest

from repro.core import PFMParams, SimConfig, SuperscalarCore, simulate
from repro.faults import check_equivalence
from repro.pfm.fetch_agent import FetchAgent
from repro.pfm.packets import ObsPacket, SquashPacket
from repro.pfm.snoop import SnoopKind
from repro.workloads.astar import build_astar_workload


def make_fabric(queue_size: int = 8):
    workload = build_astar_workload(grid_width=64, grid_height=64)
    config = SimConfig(
        max_instructions=1_000, pfm=PFMParams(queue_size=queue_size)
    )
    core = SuperscalarCore(workload, config)
    fabric = core.fabric
    fabric.roi_active = True  # on_core_squash is a no-op outside the ROI
    return fabric


def _packet(i: int) -> ObsPacket:
    return ObsPacket(kind=SnoopKind.DEST_VALUE, tag="t", pc=0x40, value=float(i))


def test_squash_bypasses_full_obsq():
    fabric = make_fabric(queue_size=4)
    for i in range(4):
        fabric.obs_q.push(10 + i, _packet(i))
    assert not fabric.obs_q.can_push()

    done = fabric.on_core_squash(100, "branch")
    c = fabric.timings.clk_ratio
    assert done == 100 + (fabric.timings.delay + 3) * c

    # The squash is visible to the component ahead of every queued
    # observation, full queue notwithstanding.
    now = 100 + c
    head = fabric.obs_peek(now)
    assert isinstance(head, SquashPacket)
    popped = fabric.obs_pop(now)
    assert isinstance(popped, SquashPacket)
    assert popped.core_time == 100 + c
    # ObsQ-R contents survived untouched; next pop is the oldest packet.
    assert fabric.obs_q.occupancy == 4
    assert fabric.obs_pop(now).value == 0.0


def test_back_to_back_squashes_serialize():
    fabric = make_fabric()
    c = fabric.timings.clk_ratio
    first_done = fabric.on_core_squash(100, "branch")
    second_done = fabric.on_core_squash(104, "disambiguation")
    assert second_done > first_done >= 100
    assert fabric.squashes_signalled == 2
    assert fabric._pending_squashes == [100 + c, 104 + c]

    # Both notifications reach the component, oldest first.
    now = second_done
    first = fabric.obs_pop(now)
    second = fabric.obs_pop(now)
    assert isinstance(first, SquashPacket) and isinstance(second, SquashPacket)
    assert first.core_time < second.core_time
    assert fabric._pending_squashes == []


def test_repeated_squash_refloors_pending_predictions():
    agent = FetchAgent(queue_size=16, clk_ratio=4, width=4)
    for i in range(8):
        agent.push(taken=bool(i % 2), ready=10 + i, tag=f"b{i}")

    agent.apply_squash(squash_done=100)
    first_floors = [e.ready for e in agent._pending]
    assert min(first_floors) >= 100 + 4  # squash_done + one RF cycle

    # A second squash before any packet was consumed must re-floor to the
    # *later* done time — floors only ever move forward.
    agent.apply_squash(squash_done=200)
    second_floors = [e.ready for e in agent._pending]
    assert min(second_floors) >= 200 + 4
    assert all(b >= a for a, b in zip(first_floors, second_floors))
    # Replay bandwidth: W packets per RF cycle after squash-done.
    assert second_floors == sorted(second_floors)
    assert second_floors[0] == second_floors[3]  # same replay group of 4
    assert second_floors[4] == second_floors[0] + 4


def test_squash_storm_with_tiny_queue_stays_architecturally_equivalent():
    """Full-run stress: queue8 forces ObsQ-R back-pressure around the
    frequent astar squashes; timing degrades, architecture must not."""
    workload = build_astar_workload(grid_width=64, grid_height=64)
    window = SimConfig(max_instructions=2_500)
    baseline = simulate(workload, window)
    core = SuperscalarCore(
        build_astar_workload(grid_width=64, grid_height=64),
        SimConfig(max_instructions=2_500, pfm=PFMParams(queue_size=8)),
    )
    stats = core.run()
    assert core.fabric.squashes_signalled > 0
    assert check_equivalence(baseline, stats).ok
