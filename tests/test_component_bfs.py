"""The bfs custom component: T0-T3 decoupling and visited inference."""

from tests.pfm_harness import FakeFabric, enable, make_io, send_obs, step_component

from repro.pfm.component import RFTimings
from repro.pfm.components.bfs_engine import BfsEngine
from repro.pfm.snoop import SnoopKind
from repro.workloads.graphs import CSRGraph
from repro.workloads.mem import MemoryImage


def line_graph(n=6):
    """0-1-2-...-n-1 chain."""
    offsets, neighbors = [0], []
    for u in range(n):
        if u > 0:
            neighbors.append(u - 1)
        if u < n - 1:
            neighbors.append(u + 1)
        offsets.append(len(neighbors))
    return CSRGraph(n, offsets, neighbors)


def make_setup(graph=None, frontier=(0,), width=4, scope=16, visited=()):
    graph = graph or line_graph()
    memory = MemoryImage()
    offsets_base = memory.store_array("offsets", graph.offsets)
    neighbors_base = memory.store_array("neighbors", graph.neighbors)
    props = [-1] * graph.num_nodes
    for v in visited:
        props[v] = 99
    prop_base = memory.store_array("properties", props)
    frontier_base = memory.store_array(
        "frontier", list(frontier) + [0] * (graph.num_nodes - len(frontier))
    )
    component = BfsEngine(
        RFTimings(clk_ratio=4, width=width, delay=0),
        memory,
        {"queue_entries": scope},
    )
    fabric = FakeFabric(memory)
    io = make_io(component, fabric)
    enable(fabric)
    send_obs(fabric, SnoopKind.DEST_VALUE, "offsets_base", value=offsets_base)
    send_obs(fabric, SnoopKind.DEST_VALUE, "neighbors_base", value=neighbors_base)
    send_obs(fabric, SnoopKind.DEST_VALUE, "prop_base", value=prop_base)
    send_obs(fabric, SnoopKind.DEST_VALUE, "frontier_base", value=frontier_base)
    return component, fabric, io, memory, graph


def test_configuration_and_call_reset():
    component, fabric, io, _, _ = make_setup()
    step_component(component, fabric, io, cycles=3)
    assert component.enabled
    assert component.offsets_base is not None
    assert fabric.new_calls == 1


def test_prediction_interleaving_for_middle_node():
    # Node 2 of the chain has neighbours 1 and 3, both unvisited.
    component, fabric, io, _, _ = make_setup(frontier=(2,))
    step_component(component, fabric, io, cycles=40)
    tags = [tag for _, tag in fabric.preds[:5]]
    assert tags == ["loop_exit", "visited", "loop_exit", "visited", "loop_exit"]
    values = [taken for taken, _ in fabric.preds[:5]]
    # Two iterations (NT on loop_exit), both neighbours unvisited (NT),
    # then the final loop exit (T).
    assert values == [False, False, False, False, True]


def test_visited_neighbor_predicted_taken():
    component, fabric, io, _, _ = make_setup(frontier=(2,), visited=(1,))
    step_component(component, fabric, io, cycles=40)
    # First visited prediction corresponds to neighbour 1: taken.
    visited_preds = [taken for taken, tag in fabric.preds if tag == "visited"]
    assert visited_preds[0] is True
    assert visited_preds[1] is False  # neighbour 3


def test_trip_count_zero_node_emits_single_exit():
    graph = CSRGraph(3, [0, 0, 1, 2], [2, 1])  # node 0 isolated
    component, fabric, io, _, _ = make_setup(graph=graph, frontier=(0,))
    step_component(component, fabric, io, cycles=30)
    assert fabric.preds[0] == (True, "loop_exit")


def test_inferred_visited_store_within_window():
    """Nodes 1 and 3 share neighbour 2: the second examination of node 2
    must be predicted visited even though the store is not in memory."""
    component, fabric, io, _, _ = make_setup(frontier=(1, 3))
    step_component(component, fabric, io, cycles=80)
    visited_preds = [taken for taken, tag in fabric.preds if tag == "visited"]
    # Node 1's neighbours: 0, 2 -> [NT, NT]; node 3's: 2, 4 -> [T!, NT].
    assert visited_preds[:4] == [False, False, True, False]
    assert component.store_inferences >= 1


def test_window_dealloc_clears_inference():
    component, fabric, io, _, _ = make_setup(frontier=(1, 3), scope=8)
    step_component(component, fabric, io, cycles=80)
    assert component._inferred
    send_obs(fabric, SnoopKind.DEST_VALUE, "iter_inc", value=8)
    step_component(component, fabric, io, cycles=4)
    assert not component._inferred


def test_t0_bounded_by_scope():
    component, fabric, io, _, _ = make_setup(scope=4)
    step_component(component, fabric, io, cycles=30)
    frontier_loads = [
        info for info in component._pending_loads.values()
        if info[0] == "frontier"
    ]
    assert component._tail - component._head <= 4


def test_loads_cover_all_structures():
    component, fabric, io, memory, _ = make_setup(frontier=(2,))
    step_component(component, fabric, io, cycles=40)
    addresses = [addr for _, addr, _ in fabric.loads]
    for region in ("frontier", "offsets", "neighbors", "properties"):
        assert any(memory.contains(region, a) for a in addresses), region


def test_is_idle_semantics():
    component, fabric, io, memory, _ = make_setup(scope=2, frontier=(2,))
    fresh = BfsEngine(RFTimings(4, 4, 0), memory, {"queue_entries": 2})
    assert fresh.is_idle()
    step_component(component, fabric, io, cycles=60)
    assert component.is_idle()  # scope exhausted, everything emitted


def test_structure_inventory():
    structure = BfsEngine(
        RFTimings(4, 4, 0), MemoryImage(), {"queue_entries": 64}
    ).structure()
    assert structure["queue_bits"] > 0
    assert structure["width"] == 4
