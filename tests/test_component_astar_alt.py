"""astar-alt: the table-mimicking alternative design (Section 5)."""

import pytest

from repro.core import PFMParams, SimConfig, SuperscalarCore, simulate
from repro.pfm.component import RFTimings
from repro.pfm.components.astar_alt import (
    AstarAltPredictor,
    _MimicTable,
)
from repro.workloads.astar import build_astar_alt_workload, build_astar_workload
from repro.workloads.mem import MemoryImage

WINDOW = 15_000


def grid_kwargs(side=128):
    return dict(grid_width=side, grid_height=side)


# ---------------------------------------------------------------------- #
# mimic table
# ---------------------------------------------------------------------- #

def test_mimic_table_roundtrip_and_miss():
    table = _MimicTable(16)
    assert table.read(5) is None
    table.write(5, 99)
    assert table.read(5) == 99


def test_mimic_table_aliasing():
    table = _MimicTable(16)
    table.write(5, 1)
    table.write(5 + 16, 2)  # same slot, different tag: evicts
    assert table.read(5) is None
    assert table.read(5 + 16) == 2


def test_mimic_table_power_of_two():
    with pytest.raises(ValueError):
        _MimicTable(24)


# ---------------------------------------------------------------------- #
# end to end
# ---------------------------------------------------------------------- #

def test_alt_issues_no_loads():
    core = SuperscalarCore(
        build_astar_alt_workload(**grid_kwargs()),
        SimConfig(max_instructions=WINDOW, pfm=PFMParams(delay=0)),
    )
    stats = core.run()
    assert stats.agent_loads == 0
    assert stats.agent_prefetches == 0
    assert stats.pfm_predicted_branches > 500


def test_alt_improves_but_less_than_main_design():
    """Section 5: astar-alt yields 125% vs the main design's 154%."""
    baseline = simulate(
        build_astar_workload(**grid_kwargs()),
        SimConfig(max_instructions=WINDOW),
    )
    alt = simulate(
        build_astar_alt_workload(**grid_kwargs()),
        SimConfig(max_instructions=WINDOW, pfm=PFMParams(delay=0)),
    )
    main = simulate(
        build_astar_workload(**grid_kwargs()),
        SimConfig(max_instructions=WINDOW, pfm=PFMParams(delay=0)),
    )
    assert baseline.ipc < alt.ipc < main.ipc
    assert alt.mpki < baseline.mpki / 2


def test_alt_active_updates_cover_loop_carried_dependency():
    core = SuperscalarCore(
        build_astar_alt_workload(**grid_kwargs()),
        SimConfig(max_instructions=WINDOW, pfm=PFMParams(delay=0)),
    )
    core.run()
    component = core.fabric.component
    assert component.active_updates > 100
    assert component.corrections > 100


def test_alt_less_robust_to_large_inputs():
    """The paper's footnote: the load-based strategy is 'more robust to
    different input dataset sizes' — shrink astar-alt's tables below the
    grid size and its accuracy degrades; the main design is unaffected."""
    def alt_mpki(table_entries):
        stats = simulate(
            build_astar_alt_workload(
                table_entries=table_entries, **grid_kwargs(side=192)
            ),
            SimConfig(max_instructions=WINDOW, pfm=PFMParams(delay=0)),
        )
        return stats.mpki

    large_tables = alt_mpki(64 * 1024)
    # The wavefront's active set must overflow the table for aliasing to
    # bite: 256 entries against a 36864-cell grid degrades heavily.
    tiny_tables = alt_mpki(256)
    assert tiny_tables > large_tables * 1.5


def test_alt_structure_is_bram_dominated():
    component = AstarAltPredictor(
        RFTimings(4, 1, 4), MemoryImage(), {"table_entries": 16 * 1024}
    )
    structure = component.structure()
    assert structure["table_bits"] > 500_000
    assert structure["cam_bits"] == 0


def test_alt_worklist_reconciliation():
    """The internal worklists must track the program's actual worklists
    (appends are reconciled from the retire stream)."""
    core = SuperscalarCore(
        build_astar_alt_workload(**grid_kwargs()),
        SimConfig(max_instructions=WINDOW, pfm=PFMParams(delay=0)),
    )
    core.run()
    component = core.fabric.component
    # After the first call the component is self-sustaining.
    assert not component._first_call
    assert len(component._in_list) > 0
