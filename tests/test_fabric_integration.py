"""PFM fabric integration with the core: end-to-end mechanism checks."""

import pytest

from repro.core import PFMParams, SimConfig, SuperscalarCore, simulate
from repro.memory.hierarchy import HierarchyParams
from repro.pfm.component import CustomComponent
from repro.workloads.astar import build_astar_workload

WINDOW = 15_000


def astar_run(pfm=None, **kwargs):
    config = SimConfig(max_instructions=WINDOW, pfm=pfm, **kwargs)
    core = SuperscalarCore(build_astar_workload(grid_width=128, grid_height=128), config)
    stats = core.run()
    return core, stats


def test_pfm_reduces_mpki_dramatically():
    _, baseline = astar_run()
    _, custom = astar_run(pfm=PFMParams(delay=0))
    assert baseline.mpki > 20
    assert custom.mpki < baseline.mpki / 5
    assert custom.ipc > baseline.ipc * 1.5


def test_roi_activates_and_counts():
    core, stats = astar_run(pfm=PFMParams())
    assert core.fabric.roi_active
    assert core.fabric.roi_fetch_active
    assert stats.retired_in_roi > 0
    assert stats.fetched_in_roi > 0
    assert 0 < stats.fst_hit_pct < 100
    assert 0 < stats.rst_hit_pct < 100


def test_predictions_supplied_without_fallbacks():
    core, stats = astar_run(pfm=PFMParams())
    assert stats.pfm_predicted_branches > 1000
    assert stats.pfm_fallback_predictions == 0
    assert core.fabric.enabled  # chicken switch never fired


def test_squash_protocol_costs_cycles():
    _, fast = astar_run(pfm=PFMParams(delay=0))
    _, slow = astar_run(pfm=PFMParams(delay=8))
    assert slow.retire_stall_squash_sync_cycles >= fast.retire_stall_squash_sync_cycles
    assert slow.ipc <= fast.ipc * 1.02  # delay never helps


def test_bandwidth_starvation_stalls_fetch():
    _, wide = astar_run(pfm=PFMParams(clk_ratio=4, width=4, delay=0))
    _, narrow = astar_run(pfm=PFMParams(clk_ratio=8, width=1, delay=0))
    assert narrow.fetch_stall_pfm_cycles > wide.fetch_stall_pfm_cycles
    assert narrow.ipc < wide.ipc


def test_port_ls1_close_to_port_all():
    """Figure 9c: PRF port availability is not an issue for astar."""
    _, all_ports = astar_run(pfm=PFMParams(delay=4, port="ALL"))
    _, one_port = astar_run(pfm=PFMParams(delay=4, port="LS1"))
    assert one_port.ipc > all_ports.ipc * 0.9


def test_queue_size_insensitivity():
    """Figure 9b: performance resistant to communication queue size.

    Resistance holds from 16 entries up in this model; below that the
    agent-side discard variant occupies IntQ-F entries the paper's
    T2-side discard never allocates (documented deviation, DESIGN.md §5).
    """
    _, small = astar_run(pfm=PFMParams(delay=4, queue_size=16))
    _, large = astar_run(pfm=PFMParams(delay=4, queue_size=64))
    assert small.ipc > large.ipc * 0.8


def test_scope_sensitivity():
    """Figure 10: a 1-entry index_queue collapses the speedup."""
    _, tiny = astar_run(
        pfm=PFMParams(delay=4, component_overrides={"index_queue_entries": 1})
    )
    _, full = astar_run(
        pfm=PFMParams(delay=4, component_overrides={"index_queue_entries": 8})
    )
    assert full.ipc > tiny.ipc * 1.3


def test_agent_loads_issued_and_counted():
    core, stats = astar_run(pfm=PFMParams())
    assert stats.agent_loads > 1000
    assert core.fabric.load_agent.loads_issued == stats.agent_loads
    assert core.hierarchy.stats.agent_loads == stats.agent_loads


def test_obs_packets_of_all_kinds():
    _, stats = astar_run(pfm=PFMParams())
    assert stats.obs_dest_value > 0
    assert stats.obs_branch_outcome > 0
    assert stats.obs_store_value > 0


class _BrokenComponent(CustomComponent):
    """Never produces predictions: exercises the §2.4 watchdog path."""

    def step(self, io):
        while io.pop_obs() is not None:
            pass
        while io.pop_return() is not None:
            pass

    def is_idle(self):
        return True


def test_buggy_component_falls_back_to_core_predictor():
    workload = build_astar_workload(
        grid_width=128, grid_height=128, component_factory=_BrokenComponent
    )
    stats = simulate(
        workload, SimConfig(max_instructions=WINDOW, pfm=PFMParams())
    )
    # Every FST-hit branch fell back; the run completes, close to baseline.
    assert stats.pfm_fallback_predictions > 1000
    assert stats.pfm_predicted_branches == 0
    assert stats.instructions == WINDOW


class _SlowComponent(_BrokenComponent):
    """Claims work forever without producing: watchdog must fire."""

    def is_idle(self):
        return False


def test_watchdog_chicken_switch_disables_component():
    workload = build_astar_workload(
        grid_width=128, grid_height=128, component_factory=_SlowComponent
    )
    params = PFMParams()
    params.watchdog_rf_cycles = 2_000
    core = SuperscalarCore(
        workload, SimConfig(max_instructions=WINDOW, pfm=params)
    )
    stats = core.run()
    assert not core.fabric.enabled  # chicken switch fired
    assert stats.instructions == WINDOW  # run still completes


def test_pfm_prefetch_effect_can_beat_perfect_bp():
    """Figure 8's note: the custom predictor's loads warm the cache, so
    clk4_w4 can slightly exceed perfect branch prediction."""
    _, perfect = astar_run(perfect_branch_prediction=True)
    _, custom = astar_run(pfm=PFMParams(delay=0))
    assert custom.ipc > perfect.ipc * 0.9  # at least comparable
