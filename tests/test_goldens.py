"""Golden-stats regression harness.

Each golden under ``tests/goldens/`` is the full ``SimStats`` of one
``(workload, config)`` point at a small fixed window.  The simulator is
deterministic, so any engine, scheduling, or model change that perturbs
results — intentionally or not — fails these tests loudly.  After an
intentional model change, regenerate with::

    PYTHONPATH=src python -m pytest tests/test_goldens.py --update-goldens
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.experiments.pool import (
    SweepPoint,
    baseline_point,
    run_point,
    stats_to_dict,
)
from repro.experiments.runner import parse_config_label
from repro.experiments.sweep import SWEEP_WORKLOADS

GOLDEN_DIR = Path(__file__).parent / "goldens"
GOLDEN_WINDOW = 5_000
PFM_CONFIG = "clk4_w4, delay4, queue32, portLS1"

CASES = [
    (workload, variant)
    for workload in SWEEP_WORKLOADS
    for variant in ("baseline", "pfm")
]


def _point(workload: str, variant: str) -> SweepPoint:
    if variant == "baseline":
        return baseline_point(workload, GOLDEN_WINDOW)
    return SweepPoint(
        label=f"pfm:{workload}",
        workload=workload,
        window=GOLDEN_WINDOW,
        pfm=parse_config_label(PFM_CONFIG),
    )


def _golden_path(workload: str, variant: str) -> Path:
    return GOLDEN_DIR / f"{workload}--{variant}.json"


def _payload(workload: str, variant: str) -> dict:
    stats = run_point(_point(workload, variant))
    return {
        "workload": workload,
        "variant": variant,
        "window": GOLDEN_WINDOW,
        "config": None if variant == "baseline" else PFM_CONFIG,
        # round-trip through JSON so the comparison sees exactly what a
        # golden file can represent
        "stats": json.loads(json.dumps(stats_to_dict(stats))),
    }


@pytest.mark.parametrize(
    "workload,variant", CASES, ids=[f"{w}-{v}" for w, v in CASES]
)
def test_golden(workload: str, variant: str, update_goldens: bool):
    payload = _payload(workload, variant)
    path = _golden_path(workload, variant)

    if update_goldens:
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(json.dumps(payload, sort_keys=True, indent=2) + "\n")
        return

    assert path.exists(), (
        f"golden {path.name} missing — generate it with"
        " pytest tests/test_goldens.py --update-goldens"
    )
    golden = json.loads(path.read_text())

    mismatched = {
        field: (golden["stats"].get(field), value)
        for field, value in payload["stats"].items()
        if golden["stats"].get(field) != value
    }
    assert golden == payload, (
        f"{workload}/{variant} diverged from golden {path.name};"
        f" changed stats (golden -> current): {mismatched}."
        " If the change is intentional, rerun with --update-goldens."
    )
