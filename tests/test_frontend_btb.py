"""BTB and return address stack."""

import pytest

from repro.core import SimConfig, SuperscalarCore
from repro.frontend.btb import BranchTargetBuffer, ReturnAddressStack
from repro.isa.builder import ProgramBuilder
from repro.memory.hierarchy import HierarchyParams
from repro.workloads.base import Workload
from repro.workloads.mem import MemoryImage


def test_btb_miss_then_hit():
    btb = BranchTargetBuffer(entries=64)
    assert btb.predict(0x100) is None
    btb.update(0x100, 0x800)
    assert btb.predict(0x100) == 0x800
    assert btb.hits == 1 and btb.misses == 1


def test_btb_aliasing_uses_tags():
    btb = BranchTargetBuffer(entries=64)
    btb.update(0x100, 0x800)
    aliased = 0x100 + 64 * 4
    assert btb.predict(aliased) is None  # same slot, wrong tag


def test_btb_power_of_two():
    with pytest.raises(ValueError):
        BranchTargetBuffer(entries=100)


def test_ras_lifo():
    ras = ReturnAddressStack(depth=4)
    ras.push(0x104)
    ras.push(0x204)
    assert ras.pop() == 0x204
    assert ras.pop() == 0x104
    assert ras.pop() is None


def test_ras_circular_overflow():
    ras = ReturnAddressStack(depth=2)
    for addr in (0x1, 0x2, 0x3):
        ras.push(addr)
    assert ras.overflows == 1
    assert ras.pop() == 0x3
    assert ras.pop() == 0x2
    assert ras.pop() is None  # 0x1 fell off


def run_core(build):
    b = ProgramBuilder()
    build(b)
    workload = Workload("t", b.build(), MemoryImage())
    core = SuperscalarCore(
        workload,
        SimConfig(
            max_instructions=20_000,
            memory=HierarchyParams(tlb_walk_latency=0),
        ),
    )
    stats = core.run()
    return core, stats


def test_well_nested_calls_predicted_by_ras():
    def build(b):
        b.li("t1", 0)
        b.li("t2", 2000)
        b.label("loop")
        b.jal("leaf")
        b.addi("t1", "t1", 1)
        b.blt("t1", "t2", "loop")
        b.halt()
        b.label("leaf")
        b.addi("t3", "t3", 1)
        b.jalr("ra")

    core, stats = run_core(build)
    assert stats.ras_mispredicts == 0


def test_btb_warms_in_loops():
    def build(b):
        b.li("t1", 0)
        b.li("t2", 3000)
        b.label("loop")
        b.addi("t1", "t1", 1)
        b.blt("t1", "t2", "loop")
        b.halt()

    core, stats = run_core(build)
    # One cold BTB miss; every later taken back-edge hits.
    assert stats.btb_miss_bubbles <= 2
    assert core.btb.hits > 2000
