"""Shape-agreement metrics for paper-vs-measured series."""

import math

import pytest

from repro.experiments.compare import (
    log_ratio_spread,
    rank_agreement,
    score,
    shape_report,
)
from repro.experiments.report import ExperimentResult


def make_result(rows, paper):
    result = ExperimentResult(experiment="Fig T", title="t", paper=paper)
    for label, value in rows:
        result.add(label, value)
    return result


def test_perfect_ordering_gives_rho_one():
    result = make_result(
        [("a", 10.0), ("b", 20.0), ("c", 30.0)],
        {"a": 1.0, "b": 2.0, "c": 3.0},
    )
    assert rank_agreement(result) == pytest.approx(1.0)


def test_inverted_ordering_gives_rho_minus_one():
    result = make_result(
        [("a", 30.0), ("b", 20.0), ("c", 10.0)],
        {"a": 1.0, "b": 2.0, "c": 3.0},
    )
    assert rank_agreement(result) == pytest.approx(-1.0)


def test_too_few_points_returns_none():
    result = make_result([("a", 1.0), ("b", 2.0)], {"a": 1.0, "b": 2.0})
    assert rank_agreement(result) is None


def test_constant_scaling_gives_zero_spread():
    result = make_result(
        [("a", 30.0), ("b", 60.0), ("c", 90.0)],
        {"a": 10.0, "b": 20.0, "c": 30.0},
    )
    assert log_ratio_spread(result) == pytest.approx(0.0, abs=1e-12)


def test_spread_measures_factor_dispersion():
    result = make_result(
        [("a", 10.0), ("b", 40.0)],
        {"a": 10.0, "b": 10.0},
    )
    spread = log_ratio_spread(result)
    assert spread == pytest.approx(math.log(4.0) / 2)


def test_negative_values_excluded_from_spread():
    result = make_result(
        [("a", -5.0), ("b", 10.0), ("c", 20.0)],
        {"a": 5.0, "b": 10.0, "c": 20.0},
    )
    assert log_ratio_spread(result) == pytest.approx(0.0, abs=1e-12)


def test_rows_without_paper_values_ignored():
    result = make_result(
        [("a", 10.0), ("extra", 99.0), ("b", 20.0), ("c", 30.0)],
        {"a": 1.0, "b": 2.0, "c": 3.0},
    )
    assert score(result).points == 3


def test_shape_report_renders_table():
    result = make_result(
        [("a", 10.0), ("b", 20.0), ("c", 30.0)],
        {"a": 1.0, "b": 2.0, "c": 3.0},
    )
    text = shape_report([result])
    assert "Fig T" in text
    assert "+1.00" in text


def test_shape_of_actual_fig8_is_strong():
    """The repo's own Figure 8 must order like the paper's."""
    from repro.experiments.astar_sweeps import fig8

    result = fig8(window=10_000)
    rho = rank_agreement(result)
    assert rho is not None and rho > 0.7
