"""Structural resource models: rings, heaps, lane scheduler."""

import pytest
from hypothesis import given, strategies as st

from repro.core.resources import HeapOccupancy, LaneScheduler, RingOccupancy


# ---------------------------------------------------------------------- #
# RingOccupancy
# ---------------------------------------------------------------------- #

def test_ring_allows_up_to_capacity():
    ring = RingOccupancy(3)
    for i in range(3):
        assert ring.earliest_alloc(i) == i
        ring.allocate(release_time=100 + i)
    # 4th allocation must wait for the first release.
    assert ring.earliest_alloc(50) == 100


def test_ring_frees_in_order():
    ring = RingOccupancy(2)
    ring.allocate(10)
    ring.allocate(20)
    assert ring.earliest_alloc(5) == 10
    ring.allocate(30)  # window slides: oldest (10) dropped
    assert ring.earliest_alloc(5) == 20


def test_ring_capacity_validation():
    with pytest.raises(ValueError):
        RingOccupancy(0)


@given(st.lists(st.integers(1, 50), min_size=1, max_size=80))
def test_ring_property_never_exceeds_capacity(releases):
    """At any time t, entries with release > t never exceed capacity."""
    capacity = 4
    ring = RingOccupancy(capacity)
    clock = 0
    live: list[int] = []
    for extra in releases:
        start = ring.earliest_alloc(clock)
        assert start >= clock
        release = start + extra
        ring.allocate(release)
        live = [r for r in live if r > start] + [release]
        assert len(live) <= capacity
        clock = start


# ---------------------------------------------------------------------- #
# HeapOccupancy
# ---------------------------------------------------------------------- #

def test_heap_allows_out_of_order_release():
    heap = HeapOccupancy(2)
    heap.allocate(100)
    heap.allocate(50)
    # At t=60 the 50-release has drained: room available.
    assert heap.earliest_alloc(60) == 60
    heap.allocate(70)
    # Now 70 and 100 outstanding: next alloc waits for 70.
    assert heap.earliest_alloc(60) == 70


def test_heap_capacity_validation():
    with pytest.raises(ValueError):
        HeapOccupancy(0)


# ---------------------------------------------------------------------- #
# LaneScheduler
# ---------------------------------------------------------------------- #

def test_one_op_per_lane_per_cycle():
    lanes = LaneScheduler(num_lanes=2, issue_width=8)
    slots = [lanes.reserve((0, 1), earliest=5) for _ in range(4)]
    cycles = sorted(c for _, c in slots)
    assert cycles == [5, 5, 6, 6]  # 2 lanes -> 2 per cycle


def test_issue_width_limits_across_lanes():
    lanes = LaneScheduler(num_lanes=8, issue_width=2)
    slots = [lanes.reserve(tuple(range(8)), earliest=0) for _ in range(4)]
    cycles = sorted(c for _, c in slots)
    assert cycles == [0, 0, 1, 1]


def test_unpipelined_op_blocks_lane():
    lanes = LaneScheduler(num_lanes=1, issue_width=8)
    _, first = lanes.reserve((0,), earliest=0, block_cycles=10)
    _, second = lanes.reserve((0,), earliest=1)
    assert first == 0
    assert second == 10


def test_port_free_query():
    lanes = LaneScheduler(num_lanes=2, issue_width=8)
    lane, cycle = lanes.reserve((0,), earliest=3)
    assert not lanes.is_lane_free(0, 3)
    assert lanes.is_lane_free(1, 3)
    assert lanes.is_lane_free(0, 4)


def test_earliest_free_port_scans_forward():
    lanes = LaneScheduler(num_lanes=1, issue_width=8)
    lanes.reserve((0,), earliest=5)
    lanes.reserve((0,), earliest=6)
    assert lanes.earliest_free_port((0,), earliest=5) == 7


def test_prune_discards_old_state():
    lanes = LaneScheduler(num_lanes=1, issue_width=1)
    lanes.reserve((0,), earliest=5)
    lanes.prune(100)
    # Old reservation gone: the slot reads free again.
    assert lanes.is_lane_free(0, 5)


@given(st.lists(st.integers(0, 20), min_size=1, max_size=60))
def test_property_no_double_booking(earliests):
    """No two reservations ever share (lane, cycle)."""
    lanes = LaneScheduler(num_lanes=3, issue_width=2)
    taken = set()
    for earliest in earliests:
        lane, cycle = lanes.reserve((0, 1, 2), earliest=earliest)
        assert (lane, cycle) not in taken
        taken.add((lane, cycle))
        per_cycle = sum(1 for (_, c) in taken if c == cycle)
        assert per_cycle <= 2  # issue width respected
