"""The experiments command-line entry point."""

import pytest

from repro.experiments.__main__ import main


def test_list_prints_registry(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in ("fig2", "fig8", "tab4", "fig18", "robust-graphs", "shape"):
        assert name in out


def test_single_experiment_runs_and_renders(capsys):
    assert main(["tab4"]) == 0
    out = capsys.readouterr().out
    assert "Table 4" in out
    assert "astar (4wide)" in out


def test_unknown_experiment_errors():
    with pytest.raises(SystemExit):
        main(["fig99"])


def test_out_flag_writes_file(tmp_path, capsys):
    path = tmp_path / "results.md"
    assert main(["tab4", "--out", str(path)]) == 0
    text = path.read_text()
    assert text.startswith("# PFM reproduction results")
    assert "Table 4" in text


def test_window_flag_threads_through(capsys):
    assert main(["astar-mpki", "--window", "6000"]) == 0
    out = capsys.readouterr().out
    assert "MPKI" in out


def test_no_experiment_and_no_smoke_errors():
    with pytest.raises(SystemExit):
        main([])


def test_smoke_with_experiment_errors():
    with pytest.raises(SystemExit):
        main(["fig8", "--smoke"])


def test_smoke_runs_parallel_and_writes_json(tmp_path, capsys):
    json_path = tmp_path / "smoke.json"
    assert main([
        "--smoke", "--window", "800", "--jobs", "2", "--no-cache",
        "--json", str(json_path),
    ]) == 0
    out = capsys.readouterr().out
    assert "Sweep" in out and "jobs=2" in out
    payload = json_path.read_text()
    assert '"window": 800' in payload


def test_sweep_json_identical_across_jobs(tmp_path, capsys):
    paths = {}
    for jobs in ("1", "2"):
        paths[jobs] = tmp_path / f"sweep{jobs}.json"
        assert main([
            "sweep", "--window", "800", "--jobs", jobs, "--no-cache",
            "--json", str(paths[jobs]),
        ]) == 0
    capsys.readouterr()
    assert paths["1"].read_bytes() == paths["2"].read_bytes()


def test_jobs_flag_on_figure_experiment(tmp_path, capsys):
    assert main([
        "astar-mpki", "--window", "2000", "--jobs", "2",
        "--cache-dir", str(tmp_path / "cache"),
    ]) == 0
    out = capsys.readouterr().out
    assert "MPKI" in out
    # baselines persisted for later invocations
    assert list((tmp_path / "cache" / "baselines").glob("*.json"))
    # finished sweeps leave no checkpoint behind
    assert not list(
        (tmp_path / "cache" / "checkpoints").glob("*.jsonl")
    )


def test_list_prints_service_surface(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "service request kinds:" in out
    for kind in ("simulate", "sweep", "trace"):
        assert kind in out
    assert "service endpoints:" in out
    assert "POST /submit" in out
    assert "serve" in out and "submit" in out


def test_cache_list_reports_service_job_store(tmp_path, capsys):
    from repro.service.jobs import JobStore
    from repro.service.server import jobs_dir

    cache = tmp_path / "cache"
    store = JobStore(jobs_dir(cache))
    store.write_result("job-000001", "{}\n")
    assert main(["cache", "list", "--cache-dir", str(cache)]) == 0
    out = capsys.readouterr().out
    assert "service jobs: 1 file(s)" in out

    assert main(["cache", "clear", "--jobs", "--cache-dir", str(cache)]) == 0
    out = capsys.readouterr().out
    assert "removed 1 job-store file(s)" in out
    assert store.size() == (0, 0)
