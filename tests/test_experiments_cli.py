"""The experiments command-line entry point."""

import pytest

from repro.experiments.__main__ import main


def test_list_prints_registry(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in ("fig2", "fig8", "tab4", "fig18", "robust-graphs", "shape"):
        assert name in out


def test_single_experiment_runs_and_renders(capsys):
    assert main(["tab4"]) == 0
    out = capsys.readouterr().out
    assert "Table 4" in out
    assert "astar (4wide)" in out


def test_unknown_experiment_errors():
    with pytest.raises(SystemExit):
        main(["fig99"])


def test_out_flag_writes_file(tmp_path, capsys):
    path = tmp_path / "results.md"
    assert main(["tab4", "--out", str(path)]) == 0
    text = path.read_text()
    assert text.startswith("# PFM reproduction results")
    assert "Table 4" in text


def test_window_flag_threads_through(capsys):
    assert main(["astar-mpki", "--window", "6000"]) == 0
    out = capsys.readouterr().out
    assert "MPKI" in out


def test_no_experiment_and_no_smoke_errors():
    with pytest.raises(SystemExit):
        main([])


def test_smoke_with_experiment_errors():
    with pytest.raises(SystemExit):
        main(["fig8", "--smoke"])


def test_smoke_runs_parallel_and_writes_json(tmp_path, capsys):
    json_path = tmp_path / "smoke.json"
    assert main([
        "--smoke", "--window", "800", "--jobs", "2", "--no-cache",
        "--json", str(json_path),
    ]) == 0
    out = capsys.readouterr().out
    assert "Sweep" in out and "jobs=2" in out
    payload = json_path.read_text()
    assert '"window": 800' in payload


def test_sweep_json_identical_across_jobs(tmp_path, capsys):
    paths = {}
    for jobs in ("1", "2"):
        paths[jobs] = tmp_path / f"sweep{jobs}.json"
        assert main([
            "sweep", "--window", "800", "--jobs", jobs, "--no-cache",
            "--json", str(paths[jobs]),
        ]) == 0
    capsys.readouterr()
    assert paths["1"].read_bytes() == paths["2"].read_bytes()


def test_jobs_flag_on_figure_experiment(tmp_path, capsys):
    assert main([
        "astar-mpki", "--window", "2000", "--jobs", "2",
        "--cache-dir", str(tmp_path / "cache"),
    ]) == 0
    out = capsys.readouterr().out
    assert "MPKI" in out
    # results persisted to the content-addressed store for later runs
    assert list((tmp_path / "cache" / "store").glob("??/*.json"))
    # finished sweeps leave no checkpoint behind
    assert not list(
        (tmp_path / "cache" / "checkpoints").glob("*.jsonl")
    )


def test_list_prints_service_surface(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "service request kinds:" in out
    for kind in ("simulate", "sweep", "trace"):
        assert kind in out
    assert "service endpoints:" in out
    assert "POST /submit" in out
    assert "serve" in out and "submit" in out


def test_sharded_sweep_merge_byte_identical_to_single_host(tmp_path, capsys):
    """The distributed-sweep contract, end to end through the CLI: two
    shard invocations into separate stores, merged and rendered, produce
    the same JSON bytes as one unsharded run."""
    unsharded = tmp_path / "unsharded.json"
    assert main([
        "sweep", "--window", "800", "--no-cache", "--json", str(unsharded),
    ]) == 0
    for index in ("1", "2"):
        assert main([
            "sweep", "--window", "800", "--shard", f"{index}/2",
            "--no-cache", "--store", str(tmp_path / f"store-{index}"),
        ]) == 0
    out = capsys.readouterr().out
    assert "shard 1/2: ran" in out and "shard 2/2: ran" in out

    merged = tmp_path / "merged.json"
    assert main([
        "shard-merge", str(tmp_path / "store-1"), str(tmp_path / "store-2"),
        "--store", str(tmp_path / "store-merged"),
        "--window", "800", "--json", str(merged),
    ]) == 0
    out = capsys.readouterr().out
    assert "0 conflict(s) kept ours" in out
    assert "0 simulated" in out  # every grid point was a store hit
    assert unsharded.read_bytes() == merged.read_bytes()


def test_shard_summary_json_and_validation(tmp_path, capsys):
    summary = tmp_path / "shard.json"
    assert main([
        "sweep", "--window", "800", "--shard", "1/1", "--no-cache",
        "--store", str(tmp_path / "store"), "--json", str(summary),
    ]) == 0
    capsys.readouterr()
    import json

    payload = json.loads(summary.read_text())
    assert payload["shard"] == "1/1"
    assert payload["points_selected"] == payload["points_total"]
    assert list((tmp_path / "store").glob("??/*.json"))

    with pytest.raises(SystemExit):  # malformed spec
        main(["sweep", "--shard", "3/2", "--no-cache",
              "--store", str(tmp_path / "s")])
    with pytest.raises(SystemExit):  # shard needs a store
        main(["sweep", "--shard", "1/2", "--no-cache"])
    with pytest.raises(SystemExit):  # only the sweep grid is shardable
        main(["tab4", "--shard", "1/2", "--store", str(tmp_path / "s")])


def test_cache_gc_cli_evicts_to_budget(tmp_path, capsys):
    import os

    cache = tmp_path / "cache"
    for name, mtime in (("old", 1_000), ("new", 2_000)):
        path = cache / "store" / "ab" / (name * 32 + ".json")
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(b"x" * 100)
        os.utime(path, (mtime, mtime))

    with pytest.raises(SystemExit):  # gc requires --max-bytes
        main(["cache", "gc", "--cache-dir", str(cache)])
    assert main(["cache", "gc", "--max-bytes", "100",
                 "--cache-dir", str(cache)]) == 0
    out = capsys.readouterr().out
    assert "store: 2 file(s)" in out and "evicted 1 file(s)" in out
    assert "budget 100 B" in out
    survivors = list((cache / "store").glob("??/*.json"))
    assert [p.name for p in survivors] == ["new" * 32 + ".json"]


def test_cache_list_and_clear_cover_the_store(tmp_path, capsys):
    cache = tmp_path / "cache"
    assert main(["astar-mpki", "--window", "2000",
                 "--cache-dir", str(cache)]) == 0
    capsys.readouterr()
    assert main(["cache", "list", "--cache-dir", str(cache)]) == 0
    out = capsys.readouterr().out
    assert "result store" in out and "entr" in out
    assert "total cache footprint:" in out

    assert main(["cache", "clear", "--store", "--cache-dir", str(cache)]) == 0
    out = capsys.readouterr().out
    assert "result-store entr" in out
    assert not list((cache / "store").glob("??/*.json"))


def test_cache_list_reports_service_job_store(tmp_path, capsys):
    from repro.service.jobs import JobStore
    from repro.service.server import jobs_dir

    cache = tmp_path / "cache"
    store = JobStore(jobs_dir(cache))
    store.write_result("job-000001", "{}\n")
    assert main(["cache", "list", "--cache-dir", str(cache)]) == 0
    out = capsys.readouterr().out
    assert "service jobs: 1 file(s)" in out

    assert main(["cache", "clear", "--jobs", "--cache-dir", str(cache)]) == 0
    out = capsys.readouterr().out
    assert "removed 1 job-store file(s)" in out
    assert store.size() == (0, 0)
