"""The experiments command-line entry point."""

import pytest

from repro.experiments.__main__ import main


def test_list_prints_registry(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in ("fig2", "fig8", "tab4", "fig18", "robust-graphs", "shape"):
        assert name in out


def test_single_experiment_runs_and_renders(capsys):
    assert main(["tab4"]) == 0
    out = capsys.readouterr().out
    assert "Table 4" in out
    assert "astar (4wide)" in out


def test_unknown_experiment_errors():
    with pytest.raises(SystemExit):
        main(["fig99"])


def test_out_flag_writes_file(tmp_path, capsys):
    path = tmp_path / "results.md"
    assert main(["tab4", "--out", str(path)]) == 0
    text = path.read_text()
    assert text.startswith("# PFM reproduction results")
    assert "Table 4" in text


def test_window_flag_threads_through(capsys):
    assert main(["astar-mpki", "--window", "6000"]) == 0
    out = capsys.readouterr().out
    assert "MPKI" in out
