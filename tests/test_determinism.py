"""Determinism of simulate() across processes and worker counts.

The parallel sweep engine is only sound if a point's result depends on
nothing but the point: same workload builder + same config => the same
``SimStats``, whether computed in this process, a fresh worker, or any
of four workers racing over the grid.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.core import PFMParams
from repro.experiments.pool import (
    SweepPool,
    baseline_point,
    pfm_point,
    run_point,
)
from repro.experiments.sweep import SWEEP_WORKLOADS

WINDOW = 2_000


def _points():
    points = []
    for name in SWEEP_WORKLOADS:
        points.append(baseline_point(name, WINDOW))
        points.append(
            pfm_point(f"pfm:{name}", name, WINDOW, PFMParams(delay=0))
        )
    return points


@pytest.mark.parametrize("workload", SWEEP_WORKLOADS)
def test_repeated_in_process_runs_identical(workload: str):
    point = baseline_point(workload, WINDOW)
    first = dataclasses.asdict(run_point(point))
    second = dataclasses.asdict(run_point(point))
    assert first == second


def test_jobs1_vs_jobs4_identical():
    """Serial in-process vs four fresh worker processes, every builder."""
    serial = SweepPool(jobs=1).run(_points())
    parallel = SweepPool(jobs=4).run(_points())
    assert serial.keys() == parallel.keys()
    for label in serial:
        assert dataclasses.asdict(serial[label]) == dataclasses.asdict(
            parallel[label]
        ), f"{label} differs between jobs=1 and jobs=4"
