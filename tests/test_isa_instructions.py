"""Instruction records, operation classes, and validation."""

import pytest

from repro.isa.instructions import (
    CONDITIONAL_BRANCHES,
    MNEMONIC_CLASS,
    Instruction,
    OpClass,
)


def test_unknown_mnemonic_rejected():
    with pytest.raises(ValueError):
        Instruction("frobnicate")


def test_unknown_source_register_rejected():
    with pytest.raises(ValueError):
        Instruction("add", dst="t0", srcs=("t1", "nope"))


def test_unknown_destination_register_rejected():
    with pytest.raises(ValueError):
        Instruction("add", dst="nope", srcs=("t1", "t2"))


def test_op_class_lookup():
    assert Instruction("add", dst="t0", srcs=("t1", "t2")).op_class is OpClass.INT_ALU
    assert Instruction("ld", dst="t0", srcs=("t1",)).op_class is OpClass.LOAD
    assert Instruction("sd", srcs=("t1", "t2")).op_class is OpClass.STORE
    assert Instruction("beq", srcs=("t1", "t2"), target="x").op_class is OpClass.BRANCH
    assert Instruction("fadd", dst="ft0", srcs=("ft1", "ft2")).op_class is OpClass.FP_ALU
    assert Instruction("halt").op_class is OpClass.HALT


def test_memory_classification():
    assert OpClass.LOAD.is_memory
    assert OpClass.STORE.is_memory
    assert not OpClass.INT_ALU.is_memory


def test_control_classification():
    assert OpClass.BRANCH.is_control
    assert OpClass.JUMP.is_control
    assert not OpClass.LOAD.is_control


def test_conditional_branch_set():
    assert "beq" in CONDITIONAL_BRANCHES
    assert "bge" in CONDITIONAL_BRANCHES
    assert "j" not in CONDITIONAL_BRANCHES
    assert "jal" not in CONDITIONAL_BRANCHES


def test_is_conditional_branch_property():
    assert Instruction("bne", srcs=("t0", "t1"), target="x").is_conditional_branch
    assert not Instruction("j", target="x").is_conditional_branch


def test_load_store_properties():
    assert Instruction("ld", dst="t0", srcs=("t1",)).is_load
    assert Instruction("fsd", srcs=("t1", "ft0")).is_store
    assert not Instruction("ld", dst="t0", srcs=("t1",)).is_store


def test_with_pc_binds_pc_and_preserves_fields():
    inst = Instruction("addi", dst="t0", srcs=("t1",), imm=5, comment="x")
    bound = inst.with_pc(0x2000)
    assert bound.pc == 0x2000
    assert bound.mnemonic == "addi"
    assert bound.imm == 5
    assert bound.comment == "x"


def test_every_mnemonic_has_a_class():
    for mnemonic, op_class in MNEMONIC_CLASS.items():
        assert isinstance(op_class, OpClass), mnemonic


def test_str_rendering_mentions_operands():
    inst = Instruction("beq", srcs=("t0", "zero"), target="loop", comment="note")
    text = str(inst)
    assert "beq" in text and "loop" in text and "note" in text
