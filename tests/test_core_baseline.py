"""The cycle engine on the plain core: timing invariants and bounds."""

import pytest

from repro.core import CoreParams, SimConfig, SuperscalarCore, simulate
from repro.isa.builder import ProgramBuilder
from repro.memory.hierarchy import HierarchyParams
from repro.workloads.base import Workload
from repro.workloads.mem import MemoryImage


def make_workload(build, memory=None):
    b = ProgramBuilder()
    build(b)
    return Workload("test", b.build(), memory or MemoryImage())


def quiet_memory():
    return HierarchyParams(tlb_walk_latency=0)


def run(build, memory=None, max_instructions=5000, **config_kwargs):
    config_kwargs.setdefault("memory", quiet_memory())
    workload = make_workload(build, memory)
    return simulate(
        workload, SimConfig(max_instructions=max_instructions, **config_kwargs)
    )


def straight_line_alu(b, count=64):
    for i in range(count):
        b.addi("t0", "t0", 1)
    b.halt()


def test_ipc_bounded_by_fetch_width():
    stats = run(straight_line_alu)
    assert 0 < stats.ipc <= CoreParams().fetch_width


def test_independent_alu_ipc_near_width():
    def build(b):
        # Independent chains across 4 registers: should sustain ~4 IPC
        # (fetch width bound) in a tight unrolled loop.
        b.li("t4", 0)
        b.li("t5", 4000)
        b.label("loop")
        for _ in range(4):
            b.addi("t0", "t0", 1)
            b.addi("t1", "t1", 1)
            b.addi("t2", "t2", 1)
            b.addi("t3", "t3", 1)
        b.addi("t4", "t4", 1)
        b.blt("t4", "t5", "loop")
        b.halt()

    stats = run(build, max_instructions=6000)
    assert stats.ipc > 3.0


def test_dependent_chain_ipc_near_one():
    def build(b):
        b.li("t1", 0)
        b.li("t2", 5000)
        b.label("loop")
        for _ in range(8):
            b.addi("t0", "t0", 1)  # serial dependence
        b.addi("t1", "t1", 1)
        b.blt("t1", "t2", "loop")
        b.halt()

    stats = run(build, max_instructions=6000)
    assert stats.ipc < 1.6


def test_division_serializes():
    def build(b):
        b.li("t1", 0)
        b.li("t2", 1000)
        b.li("t3", 7)
        b.label("loop")
        b.div("t0", "t3", "t3")  # unpipelined, 12 cycles, serial
        b.addi("t1", "t1", 1)
        b.blt("t1", "t2", "loop")
        b.halt()

    stats = run(build, max_instructions=3000)
    # Two unpipelined 12-cycle dividers bound the 3-instruction iteration
    # to one per 6 cycles: IPC exactly 0.5.
    assert stats.ipc <= 0.51


def test_mispredicted_branches_cost_cycles():
    import random

    rng = random.Random(1)
    memory = MemoryImage()
    flags = [rng.randint(0, 1) for _ in range(4000)]
    memory.store_array("flags", flags)

    def build(b):
        b.li("s1", memory.base("flags"))
        b.li("s2", len(flags))
        b.li("s10", 0)
        b.label("loop")
        b.slli("t1", "s10", 3)
        b.add("t1", "t1", "s1")
        b.ld("t2", base="t1", offset=0)
        b.beq("t2", "zero", "skip")
        b.addi("t3", "t3", 1)
        b.label("skip")
        b.addi("s10", "s10", 1)
        b.blt("s10", "s2", "loop")
        b.halt()

    baseline = run(build, memory=memory, max_instructions=20_000)
    # Identical program with perfect prediction must be faster.
    memory2 = MemoryImage()
    memory2.store_array("flags", flags)
    perfect = run(
        build,
        memory=memory2,
        max_instructions=20_000,
        perfect_branch_prediction=True,
    )
    assert perfect.ipc > baseline.ipc * 1.2
    assert baseline.branch_mispredicts > 500
    assert perfect.branch_mispredicts == 0


def test_load_use_latency_limits_pointer_chase():
    memory = MemoryImage()
    # Circular chain small enough to live in L1D: after the first lap the
    # bound is the 3-cycle load-to-use latency (3 instructions / ~3
    # cycles per step -> IPC around 1).
    n = 400
    base = memory.allocate("chain", n + 1)
    for i in range(n):
        memory.store_index("chain", i, base + ((i + 1) % n) * 8)

    def build(b):
        b.li("t0", base)
        b.li("t1", 0)
        b.li("t2", 5000)
        b.label("loop")
        b.ld("t0", base="t0", offset=0)
        b.addi("t1", "t1", 1)
        b.blt("t1", "t2", "loop")
        b.halt()

    stats = run(build, memory=memory, max_instructions=15_000)
    assert 0.5 < stats.ipc < 1.6


def test_store_forwarding_beats_memory():
    memory = MemoryImage()
    base = memory.allocate("slot", 64)

    def build(b):
        b.li("s1", base)
        b.li("t1", 0)
        b.li("t2", 1000)
        b.label("loop")
        b.sd("t1", base="s1", offset=0)
        b.ld("t3", base="s1", offset=0)  # same address: forwarded
        b.addi("t1", "t1", 1)
        b.blt("t1", "t2", "loop")
        b.halt()

    stats = run(build, memory=memory, max_instructions=4000)
    assert stats.store_forwards > 500


def test_disambiguation_violation_detected():
    memory = MemoryImage()
    base = memory.allocate("buf", 64)

    def build(b):
        b.li("s1", base)
        b.li("t1", 0)
        b.li("t2", 500)
        b.li("t6", 12)
        b.label("loop")
        # Store whose address depends on a slow op (division) followed by
        # a load to the same address: the load issues before the store's
        # address resolves -> violation.
        b.div("t4", "t6", "t6")  # slow: t4 = 1
        b.slli("t5", "t4", 3)  # address depends on division
        b.add("t5", "t5", "s1")
        b.sd("t1", base="t5", offset=0)
        b.ld("t3", base="s1", offset=8)  # same address (base+8)
        b.addi("t1", "t1", 1)
        b.blt("t1", "t2", "loop")
        b.halt()

    stats = run(build, memory=memory, max_instructions=4000)
    assert stats.disambiguation_squashes > 100


def test_perfect_dcache_removes_memory_stalls():
    memory = MemoryImage()
    n = 4000
    memory.store_array("data", list(range(n)))

    def build(b):
        b.li("s1", memory.base("data"))
        b.li("t1", 0)
        b.li("t2", n)
        b.label("loop")
        b.slli("t3", "t1", 3)
        b.add("t3", "t3", "s1")
        b.ld("t4", base="t3", offset=0)
        b.add("t5", "t5", "t4")
        b.addi("t1", "t1", 1)
        b.blt("t1", "t2", "loop")
        b.halt()

    def params():
        return HierarchyParams(
            tlb_walk_latency=0, enable_l1_prefetcher=False, enable_vldp=False
        )

    memory2 = MemoryImage()
    memory2.store_array("data", list(range(n)))
    baseline = simulate(
        make_workload(build, memory),
        SimConfig(max_instructions=20_000, memory=params()),
    )
    perfect = simulate(
        make_workload(build, memory2),
        SimConfig(max_instructions=20_000, memory=params(), perfect_dcache=True),
    )
    assert perfect.ipc > baseline.ipc


def test_retire_order_and_cycle_count_positive():
    stats = run(straight_line_alu)
    assert stats.cycles >= stats.instructions // CoreParams().retire_width
    assert stats.instructions == 65  # 64 addis + halt


def test_stats_loads_stores_counted():
    memory = MemoryImage()
    base = memory.allocate("a", 8)

    def build(b):
        b.li("t0", base)
        b.sd("t1", base="t0", offset=0)
        b.ld("t2", base="t0", offset=0)
        b.halt()

    stats = run(build, memory=memory)
    assert stats.loads == 1
    assert stats.stores == 1


def test_rob_limits_runahead_under_long_miss():
    """A DRAM-missing load cannot be overlapped past the ROB size."""
    memory = MemoryImage()
    memory.allocate("far", 2)

    def build(b):
        b.li("t0", memory.base("far"))
        b.ld("t1", base="t0", offset=0)  # cold DRAM miss
        for _ in range(300):  # more than ROB 224 independent adds
            b.addi("t2", "t2", 1)
        b.halt()

    params = HierarchyParams(
        tlb_walk_latency=0, enable_l1_prefetcher=False, enable_vldp=False
    )
    stats = simulate(
        make_workload(build, memory),
        SimConfig(max_instructions=1000, memory=params),
    )
    # The load retires at ~DRAM latency; instructions beyond ROB capacity
    # wait for it, so total cycles must exceed the DRAM latency clearly.
    assert stats.cycles > params.dram_latency
