"""Property/fuzz tests for the paper-notation config parser."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import PFMParams
from repro.experiments.runner import parse_config_label

clk = st.integers(min_value=1, max_value=16)
width = st.integers(min_value=1, max_value=8)
delay = st.integers(min_value=0, max_value=32)
queue = st.integers(min_value=1, max_value=256)
port = st.sampled_from(["ALL", "LS", "LS1"])


@settings(max_examples=200)
@given(clk=clk, width=width, delay=delay, queue=queue, port=port)
def test_full_label_round_trip(clk, width, delay, queue, port):
    label = f"clk{clk}_w{width}, delay{delay}, queue{queue}, port{port}"
    params = parse_config_label(label)
    assert (params.clk_ratio, params.width, params.delay,
            params.queue_size, params.port) == (clk, width, delay, queue, port)
    # PFMParams.label() must emit the same notation the parser accepts
    assert parse_config_label(params.label()) == params


@settings(max_examples=200)
@given(clk=clk, width=width, delay=delay, queue=queue, port=port,
       order=st.permutations(range(4)))
def test_token_order_and_separators_irrelevant(clk, width, delay, queue,
                                               port, order):
    tokens = [f"clk{clk}_w{width}", f"delay{delay}", f"queue{queue}",
              f"port{port}"]
    label = " ".join(tokens[i] for i in order)
    reference = parse_config_label(", ".join(tokens))
    assert parse_config_label(label) == reference


@given(clk=clk, width=width)
def test_partial_label_keeps_other_defaults(clk, width):
    params = parse_config_label(f"clk{clk}_w{width}")
    defaults = PFMParams()
    assert params.clk_ratio == clk and params.width == width
    assert params.delay == defaults.delay
    assert params.queue_size == defaults.queue_size
    assert params.port == defaults.port


@pytest.mark.parametrize(
    "bad",
    [
        "warp9",               # unknown token
        "clk4",                # missing _wW half
        "clk4w4",              # missing separator
        "clk_w4",              # missing C
        "clkX_w4",             # non-integer C
        "clk4_w",              # missing W
        "clk4_wX",             # non-integer W
        "delay",               # missing D
        "delayfast",           # non-integer D
        "queue",               # missing Q
        "queuebig",            # non-integer Q
        "portXYZ",             # unknown port option
        "clk0_w4",             # C out of range
        "clk4_w0",             # W out of range
        "delay-1",             # negative delay
        "queue0",              # Q out of range
        "clk4_w4 delay4 bogus7",  # one bad token poisons the label
    ],
)
def test_malformed_labels_raise_value_error(bad):
    with pytest.raises(ValueError):
        parse_config_label(bad)


@pytest.mark.parametrize(
    "bad,needle",
    [
        ("clk4w4", "clk4w4"),
        ("delayfast", "delayfast"),
        ("queuebig", "queuebig"),
        ("warp9", "warp9"),
    ],
)
def test_errors_name_the_offending_token(bad, needle):
    with pytest.raises(ValueError, match=needle):
        parse_config_label(bad)


@settings(max_examples=200)
@given(st.text(alphabet="clkwdelayqueport_0123456789 ,-", max_size=24))
def test_fuzz_never_silently_misparses(text):
    """Arbitrary near-grammar text either parses or raises ValueError."""
    try:
        params = parse_config_label(text)
    except ValueError:
        return
    # anything accepted must be a structurally valid PFMParams
    assert params.clk_ratio >= 1 and params.width >= 1
    assert params.delay >= 0 and params.queue_size >= 1
    assert params.port in ("ALL", "LS", "LS1")
