"""Differential harness: every backend, every cache state, byte-identical.

The backend layer's contract is absolute: switching engines may change
*how fast* a result is computed, never the result.  Each golden case is
run under both registered backends across the three trace-cache states —
cold compile, in-process memo hit, warm-on-disk hit — and every run must
produce the same ``arch_digest``, the same ``SimStats.to_dict()``, and
match the committed golden snapshot bit for bit.

Provenance is checked separately: it lives outside the dataclass fields
precisely so equality above stays meaningful, but a numpy-pinned
baseline run must actually report ``backend == "numpy"`` (and a
fabric-carrying run must report the fallback).
"""

from __future__ import annotations

import json

import pytest

from repro.backends import have_numpy
from repro.experiments.pool import run_point, stats_to_dict
from repro.registry import backend_names
from repro.workloads import tracecache

from tests.test_goldens import CASES, _golden_path, _point

BACKENDS = ("python", "numpy")
STATES = ("cold", "warm-memo", "warm-disk")


def _load_golden(workload: str, variant: str) -> dict:
    path = _golden_path(workload, variant)
    assert path.exists(), f"golden {path.name} missing"
    return json.loads(path.read_text())["stats"]


def _run(workload: str, variant: str, backend: str, monkeypatch):
    monkeypatch.setenv("REPRO_BACKEND", backend)
    try:
        return run_point(_point(workload, variant))
    finally:
        monkeypatch.delenv("REPRO_BACKEND")


def _reset_cold() -> None:
    tracecache.reset_memory_cache()
    tracecache.clear_traces()


def test_backends_registered():
    names = backend_names()
    for backend in BACKENDS:
        assert backend in names


@pytest.mark.skipif(not have_numpy(), reason="numpy not installed")
@pytest.mark.parametrize(
    "workload,variant", CASES, ids=[f"{w}-{v}" for w, v in CASES]
)
def test_backend_equivalence_all_cache_states(workload, variant, monkeypatch):
    """18 golden cases x {python, numpy} x {cold, warm-memo, warm-disk}."""
    golden = _load_golden(workload, variant)
    runs: dict[tuple[str, str], dict] = {}
    stats_by_key = {}

    # Cold: each backend pays its own compile (memo and disk dropped).
    for backend in BACKENDS:
        _reset_cold()
        stats = _run(workload, variant, backend, monkeypatch)
        assert tracecache.STATS["compiles"] == 1
        stats_by_key[("cold", backend)] = stats

    # Warm-memo: the last cold run left the trace in the process memo.
    for backend in BACKENDS:
        memo_hits = tracecache.STATS["memo_hits"]
        stats_by_key[("warm-memo", backend)] = _run(
            workload, variant, backend, monkeypatch
        )
        assert tracecache.STATS["memo_hits"] == memo_hits + 1

    # Warm-disk: drop the memo so each run loads the on-disk file.
    for backend in BACKENDS:
        tracecache.reset_memory_cache()
        stats_by_key[("warm-disk", backend)] = _run(
            workload, variant, backend, monkeypatch
        )
        assert tracecache.STATS["disk_hits"] == 1
        assert tracecache.STATS["compiles"] == 0

    for (state, backend), stats in stats_by_key.items():
        label = f"{workload}/{variant} {backend}/{state}"
        # Round-trip through JSON so the comparison sees exactly what
        # the golden file can represent (matches test_goldens).
        payload = json.loads(json.dumps(stats_to_dict(stats)))
        assert payload["arch_digest"] == golden["arch_digest"], label
        assert payload == golden, label
        runs[(state, backend)] = stats.to_dict()

    # to_dict() (the flattened export surface) agrees across backends
    # within each cache state, and across cache states.
    reference = runs[("cold", "python")]
    for key, exported in runs.items():
        assert exported == reference, key

    # Provenance: real numpy runs say so; the PFM fabric forces the
    # reference engine and counts the fallback.
    for state in STATES:
        stats = stats_by_key[(state, "numpy")]
        if variant == "baseline":
            assert stats.backend == "numpy"
            assert stats.backend_fallbacks == 0
        else:
            assert stats.backend == "python"
            assert stats.backend_fallbacks >= 1
        assert stats_by_key[(state, "python")].backend == "python"
        assert stats_by_key[(state, "python")].backend_fallbacks == 0


@pytest.mark.skipif(not have_numpy(), reason="numpy not installed")
def test_explicit_core_params_backend(monkeypatch):
    """CoreParams.backend pins the engine without the environment, and an
    explicit name beats a conflicting $REPRO_BACKEND."""
    from repro.core import CoreParams, SimConfig, simulate
    from repro.registry import build_workload

    monkeypatch.setenv("REPRO_BACKEND", "python")
    stats = simulate(
        build_workload("astar"),
        SimConfig(core=CoreParams(backend="numpy"), max_instructions=1_500),
    )
    assert stats.backend == "numpy"

    monkeypatch.setenv("REPRO_BACKEND", "numpy")
    stats = simulate(
        build_workload("astar"),
        SimConfig(core=CoreParams(backend="python"), max_instructions=1_500),
    )
    assert stats.backend == "python"
    assert stats.backend_fallbacks == 0


def test_unknown_backend_raises():
    from repro.core import CoreParams, SimConfig, simulate
    from repro.registry import build_workload
    from repro.registry.base import UnknownNameError

    with pytest.raises(UnknownNameError):
        simulate(
            build_workload("astar"),
            SimConfig(core=CoreParams(backend="fortran"), max_instructions=100),
        )


@pytest.mark.skipif(not have_numpy(), reason="numpy not installed")
def test_numpy_requires_compiled_trace(monkeypatch):
    """With replay disabled there is no trace; numpy falls back."""
    from repro.core import CoreParams, SimConfig, simulate
    from repro.registry import build_workload

    monkeypatch.setenv(tracecache.NO_TRACE_CACHE_ENV, "1")
    stats = simulate(
        build_workload("astar"),
        SimConfig(core=CoreParams(backend="numpy"), max_instructions=1_500),
    )
    assert stats.backend == "python"
    assert stats.backend_fallbacks == 1
