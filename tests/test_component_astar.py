"""The custom astar branch predictor: engines, ordering, store inference."""

from tests.pfm_harness import FakeFabric, enable, make_io, send_obs, step_component

from repro.pfm.component import RFTimings
from repro.pfm.components.astar_bp import AstarBranchPredictor
from repro.pfm.snoop import SnoopKind
from repro.workloads.mem import MemoryImage


def make_setup(width=4, scope=8, grid_width=16, fillnum=8):
    memory = MemoryImage()
    ncells = grid_width * grid_width
    waymap_base = memory.allocate("waymap", 2 * ncells)
    maparp_base = memory.allocate("maparp", ncells)
    worklist_base = memory.allocate("worklist", ncells)
    component = AstarBranchPredictor(
        RFTimings(clk_ratio=4, width=width, delay=0),
        memory,
        {"index_queue_entries": scope, "waymap_stride": 16},
    )
    fabric = FakeFabric(memory)
    io = make_io(component, fabric)
    enable(fabric, value=fillnum)
    send_obs(fabric, SnoopKind.DEST_VALUE, "yoffset", value=grid_width)
    send_obs(fabric, SnoopKind.DEST_VALUE, "waymap_base", value=waymap_base)
    send_obs(fabric, SnoopKind.DEST_VALUE, "maparp_base", value=maparp_base)
    send_obs(fabric, SnoopKind.DEST_VALUE, "worklist_base", value=worklist_base)
    return component, fabric, io, memory


def test_snoops_configure_component():
    component, fabric, io, _ = make_setup()
    step_component(component, fabric, io, cycles=3)
    assert component.enabled
    assert component.fillnum == 8
    assert component.yoffset == 16
    assert component.worklist_base is not None
    assert fabric.new_calls == 1


def test_t0_runs_ahead_up_to_scope():
    component, fabric, io, _ = make_setup(scope=4)
    step_component(component, fabric, io, cycles=12)
    # One T0 worklist load per iteration, bounded by the 4-entry scope.
    t0_loads = [l for l in fabric.loads if not l[0] & (1 << 20)]
    assert len(t0_loads) == 4


def test_head_advance_frees_scope():
    component, fabric, io, _ = make_setup(scope=4)
    step_component(component, fabric, io, cycles=12)
    send_obs(fabric, SnoopKind.DEST_VALUE, "iter_inc", value=2)
    step_component(component, fabric, io, cycles=8)
    t0_loads = [l for l in fabric.loads if not l[0] & (1 << 20)]
    assert len(t0_loads) == 6  # two more after retiring two iterations


def test_predictions_follow_program_order_pairs():
    component, fabric, io, memory = make_setup(grid_width=16)
    # Worklist: one index in the grid interior, all neighbours unvisited
    # and unblocked -> all pairs predicted [NT, NT].
    memory.store_index("worklist", 0, 5 * 16 + 5)
    step_component(component, fabric, io, cycles=40)
    tags = [tag for _, tag in fabric.preds[:16]]
    expected = []
    for k in range(8):
        expected += [f"waymap:{k}", f"maparp:{k}"]
    assert tags == expected
    directions = [taken for taken, _ in fabric.preds[:16]]
    assert directions == [False] * 16  # all enter the CD region


def test_visited_cell_predicts_taken():
    component, fabric, io, memory = make_setup(grid_width=16, fillnum=8)
    index = 5 * 16 + 5
    memory.store_index("worklist", 0, index)
    # Mark neighbour k=0 (index - 17) as already visited with fillnum 8.
    waymap_base = memory.base("waymap")
    memory.store(waymap_base + (index - 17) * 16, 8)
    step_component(component, fabric, io, cycles=40)
    assert fabric.preds[0] == (True, "waymap:0")


def test_blocked_cell_predicts_maparp_taken():
    component, fabric, io, memory = make_setup(grid_width=16)
    index = 5 * 16 + 5
    memory.store_index("worklist", 0, index)
    memory.store_index("maparp", index - 17, 1)  # k=0 neighbour blocked
    step_component(component, fabric, io, cycles=40)
    assert fabric.preds[0] == (False, "waymap:0")
    assert fabric.preds[1] == (True, "maparp:0")


def test_inferred_store_overrides_later_visit():
    """Two worklist cells sharing a neighbour: the second visit must be
    predicted taken even though the store is not in memory (the
    index1_CAM inference of Section 4.1.2)."""
    component, fabric, io, memory = make_setup(grid_width=16)
    a = 5 * 16 + 5
    b = a + 2  # shares neighbours in the column between them
    memory.store_index("worklist", 0, a)
    memory.store_index("worklist", 1, b)
    step_component(component, fabric, io, cycles=80)
    # Neighbour a+1 (k=4 of cell a) == neighbour b-1 (k=3 of cell b).
    preds = {}
    iteration = 0
    k_counts = {}
    ordered = [tag for _, tag in fabric.preds]
    # Find the second iteration's waymap:3 prediction (cell b's b-1).
    first_iter_end = 16
    second = fabric.preds[first_iter_end:]
    way3 = [p for p in second if p[1] == "waymap:3"]
    assert way3 and way3[0][0] is True
    assert component.store_inferences >= 1


def test_cam_scope_deallocates_on_retire():
    component, fabric, io, memory = make_setup(grid_width=16, scope=2)
    a = 5 * 16 + 5
    memory.store_index("worklist", 0, a)
    memory.store_index("worklist", 1, a + 2)
    step_component(component, fabric, io, cycles=60)
    assert component._cam  # inferences recorded
    send_obs(fabric, SnoopKind.DEST_VALUE, "iter_inc", value=2)
    step_component(component, fabric, io, cycles=4)
    assert not component._cam  # scope slid past both iterations


def test_new_call_resets_state():
    component, fabric, io, memory = make_setup()
    memory.store_index("worklist", 0, 5 * 16 + 5)
    step_component(component, fabric, io, cycles=40)
    assert fabric.preds
    other = memory.allocate("worklist2", 16)
    send_obs(fabric, SnoopKind.DEST_VALUE, "worklist_base", value=other)
    step_component(component, fabric, io, cycles=2)
    assert fabric.new_calls == 2
    assert component._tail <= component.scope  # restarted


def test_width_limits_prediction_rate():
    component, fabric, io, memory = make_setup(width=2)
    memory.store_index("worklist", 0, 5 * 16 + 5)
    before_counts = []
    step_component(component, fabric, io, cycles=1)
    for _ in range(30):
        before = len(fabric.preds)
        step_component(component, fabric, io, cycles=1)
        before_counts.append(len(fabric.preds) - before)
    assert max(before_counts) <= 2  # W=2 predictions per RF cycle


def test_is_idle_before_enable_and_after_work():
    component, fabric, io, memory = make_setup(scope=2)
    fresh = AstarBranchPredictor(
        RFTimings(4, 4, 0), memory, {"index_queue_entries": 2}
    )
    assert fresh.is_idle()
    memory.store_index("worklist", 0, 5 * 16 + 5)
    step_component(component, fabric, io, cycles=60)
    # Scope full, all pairs emitted: nothing processable.
    assert component.is_idle()


def test_structure_inventory_scales_with_scope():
    small = AstarBranchPredictor(
        RFTimings(4, 4, 0), MemoryImage(), {"index_queue_entries": 4}
    ).structure()
    large = AstarBranchPredictor(
        RFTimings(4, 4, 0), MemoryImage(), {"index_queue_entries": 16}
    ).structure()
    assert large["queue_bits"] > small["queue_bits"]
    assert large["cam_bits"] > small["cam_bits"]
