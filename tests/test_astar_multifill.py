"""Repeated fill() calls: the fillnum sentinel and ROI re-entry."""

from repro.core import PFMParams, SimConfig, SuperscalarCore
from repro.workloads.astar import build_astar_workload

GRID = dict(grid_width=48, grid_height=48)


def test_multiple_fills_complete():
    workload = build_astar_workload(fills=4, **GRID)
    executor = workload.executor()
    fillnum_bumps = 0
    roi_pc = workload.program.pcs_with_comment("snoop:fillnum")[0]
    for dyn in executor.run(3_000_000):
        if dyn.pc == roi_pc:
            fillnum_bumps += 1
        if executor.halted:
            break
    assert fillnum_bumps == 4
    # fillnum ended at 7 + 4.
    assert executor.regs["s0"] == 11


def test_fillnum_sentinel_invalidates_previous_fill():
    """The second fill() must revisit cells the first fill marked: the
    sentinel changes instead of the waymap being cleared."""
    workload = build_astar_workload(fills=2, **GRID)
    executor = workload.executor()
    for _ in range(3_000_000):
        if executor.halted:
            break
        executor.step()
    assert executor.halted
    waymap_base = workload.memory.base("waymap")
    ncells = 48 * 48
    marks = [
        int(workload.memory.load(waymap_base + i * 16)) for i in range(ncells)
    ]
    # Cells from both fills coexist with different sentinels.
    assert 8 in marks and 9 in marks


def test_pfm_survives_roi_reentry():
    """The component re-synchronizes at every fill(): new fillnum snoop,
    squash, fresh call — and keeps supplying accurate predictions."""
    baseline = SuperscalarCore(
        build_astar_workload(fills=8, **GRID),
        SimConfig(max_instructions=40_000),
    ).run()
    core = SuperscalarCore(
        build_astar_workload(fills=8, **GRID),
        SimConfig(max_instructions=40_000, pfm=PFMParams(delay=0)),
    )
    stats = core.run()
    assert core.fabric.enabled
    assert stats.pfm_fallback_predictions < stats.pfm_predicted_branches / 50
    assert stats.mpki < baseline.mpki / 5
    assert stats.ipc > baseline.ipc * 1.5


def test_component_tracks_fillnum_across_fills():
    # A 16x16 grid completes a fill in ~20k instructions, so the window
    # spans several fill() calls and the component must track the moving
    # sentinel through repeated ROI-begin packets.
    core = SuperscalarCore(
        build_astar_workload(fills=6, grid_width=16, grid_height=16),
        SimConfig(max_instructions=60_000, pfm=PFMParams(delay=0)),
    )
    core.run()
    component = core.fabric.component
    assert component.fillnum is not None
    assert component.fillnum > 8  # advanced beyond the first fill
