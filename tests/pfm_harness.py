"""Test harness for stepping custom components without a core.

``FakeFabric`` implements the callbacks :class:`repro.pfm.component.RFIo`
expects, with unlimited queues and synchronous load service from a memory
image — enough to unit-test component logic (engine decoupling, inference,
ordering) independent of core timing.
"""

from __future__ import annotations

from collections import deque

from repro.pfm.component import RFIo
from repro.pfm.packets import LoadReturn, ObsPacket
from repro.pfm.snoop import SnoopKind


class _FakeQueue:
    """IntQ-IS stand-in with effectively unlimited space."""

    capacity = 1 << 20
    occupancy = 0


class FakeFabric:
    """Unlimited-capacity stand-in for PFMFabric's component-side API."""

    intq_is = _FakeQueue()

    def __init__(self, memory, load_latency_rf_cycles: int = 2):
        self.memory = memory
        self.obs: deque = deque()
        self.preds: list[tuple[bool, str]] = []
        self.loads: list[tuple[int, int, bool]] = []
        self.new_calls = 0
        self._returns: list[tuple[int, LoadReturn]] = []  # (due_rf, ret)
        self._load_latency = load_latency_rf_cycles
        self._rf_now = 0

    # -- component-facing API ------------------------------------------ #

    def obs_peek(self, now):
        return self.obs[0] if self.obs else None

    def obs_pop(self, now):
        return self.obs.popleft() if self.obs else None

    def return_pop(self, now):
        due = [r for r in self._returns if r[0] <= self._rf_now]
        if not due:
            return None
        self._returns.remove(due[0])
        return due[0][1]

    def pred_can_push(self):
        return True

    def pred_push(self, taken, ready, tag):
        self.preds.append((taken, tag))
        return True

    def pred_new_call(self):
        self.new_calls += 1
        self.preds.clear()

    def load_can_push(self):
        return True

    def load_push(self, packet, ready):
        self.loads.append((packet.ident, packet.address, packet.is_prefetch))
        if not packet.is_prefetch:
            value = self.memory.load(packet.address)
            self._returns.append(
                (
                    self._rf_now + self._load_latency,
                    LoadReturn(ident=packet.ident, value=value,
                               address=packet.address),
                )
            )
        return True


def make_io(component, fabric):
    io = RFIo(component.timings, fabric)
    return io


def step_component(component, fabric, io, cycles=1):
    for _ in range(cycles):
        fabric._rf_now += 1
        io.begin_cycle(fabric._rf_now)
        component.step(io)


def send_obs(fabric, kind, tag, value=None, taken=None, address=None, pc=0):
    fabric.obs.append(
        ObsPacket(kind=kind, tag=tag, pc=pc, value=value, taken=taken,
                  address=address)
    )


def enable(fabric, value=0.0):
    send_obs(fabric, SnoopKind.ROI_BEGIN, "roi", value=value)
