"""TLB, prefetchers, and the full hierarchy."""

import pytest

from repro.memory.hierarchy import HierarchyParams, MemoryHierarchy
from repro.memory.prefetch_nextline import NextNLinePrefetcher
from repro.memory.prefetch_vldp import VLDPPrefetcher
from repro.memory.tlb import TLB


# ---------------------------------------------------------------------- #
# TLB
# ---------------------------------------------------------------------- #

def test_tlb_miss_then_hit():
    tlb = TLB(entries=4, walk_latency=50)
    assert tlb.translate(0x1000, now=0) == 50
    assert tlb.translate(0x1008, now=1) == 0  # same page
    assert tlb.translate(0x2000, now=2) == 50  # new page


def test_tlb_lru_eviction():
    tlb = TLB(entries=2, walk_latency=50)
    tlb.translate(0x1000, 0)
    tlb.translate(0x2000, 1)
    tlb.translate(0x1000, 2)  # refresh page 1
    tlb.translate(0x3000, 3)  # evicts page 2
    assert tlb.translate(0x1000, 4) == 0
    assert tlb.translate(0x2000, 5) == 50


def test_tlb_miss_rate():
    tlb = TLB(entries=8)
    tlb.translate(0x1000, 0)
    tlb.translate(0x1000, 1)
    assert tlb.miss_rate == 0.5


# ---------------------------------------------------------------------- #
# next-N-line
# ---------------------------------------------------------------------- #

def test_nextline_targets():
    prefetcher = NextNLinePrefetcher(degree=2)
    assert prefetcher.on_access(10, now=0) == [11, 12]
    assert prefetcher.issued == 2


def test_nextline_degree_zero():
    assert NextNLinePrefetcher(degree=0).on_access(10, 0) == []


def test_nextline_negative_degree_rejected():
    with pytest.raises(ValueError):
        NextNLinePrefetcher(degree=-1)


# ---------------------------------------------------------------------- #
# VLDP
# ---------------------------------------------------------------------- #

def test_vldp_learns_constant_stride():
    vldp = VLDPPrefetcher(degree=2)
    page = 1 << 10
    targets = []
    for i in range(8):
        targets = vldp.on_access(page * 64 + i * 3, now=i)
    # After training, it should predict the +3 delta chain.
    assert targets, "expected predictions after delta training"
    last = page * 64 + 7 * 3
    assert targets[0] == last + 3


def test_vldp_learns_delta_patterns():
    vldp = VLDPPrefetcher(degree=1)
    base = (1 << 12) * 64
    # Alternating deltas +1, +2: the 2-deep DPT should capture it.
    line = base
    seq = []
    for i in range(20):
        delta = 1 if i % 2 == 0 else 2
        line += delta
        seq.append(line)
    predictions = []
    line = base
    for address in seq:
        predictions = vldp.on_access(address, now=0)
    expected_next = seq[-1] + (1 if len(seq) % 2 == 0 else 2)
    assert predictions and predictions[0] == expected_next


def test_vldp_first_touch_uses_offset_table():
    vldp = VLDPPrefetcher()
    # Train page A: first access at offset 5 then +4.
    page_a = 100 * 64
    vldp.on_access(page_a + 5, now=0)
    vldp.on_access(page_a + 9, now=1)
    # New page B, same first offset: OPT should fire +4.
    page_b = 200 * 64
    targets = vldp.on_access(page_b + 5, now=2)
    assert targets == [page_b + 9]


def test_vldp_ignores_repeated_same_line():
    vldp = VLDPPrefetcher()
    vldp.on_access(640, now=0)
    assert vldp.on_access(640, now=1) == []


# ---------------------------------------------------------------------- #
# hierarchy
# ---------------------------------------------------------------------- #

def small_hierarchy(**overrides):
    params = HierarchyParams(
        l1d_size=4 * 1024,
        l2_size=16 * 1024,
        l3_size=64 * 1024,
        enable_l1_prefetcher=False,
        enable_vldp=False,
        tlb_walk_latency=0,
        **overrides,
    )
    return MemoryHierarchy(params)


def test_latency_ladder():
    h = small_hierarchy()
    addr = 0x10000
    # Cold: DRAM.
    ready, level = h.data_access(addr, 1000)
    assert level == "DRAM"
    assert ready == 1000 + h.params.dram_latency - 1
    # After the fill: L1 hit.
    ready, level = h.data_access(addr, 5000)
    assert level == "L1D"
    assert ready == 5000 + h.params.l1_latency - 1


def test_l2_hit_after_l1_eviction():
    h = small_hierarchy()
    base = 0x100000
    h.data_access(base, 0)
    # Thrash L1D set with aliasing lines (same set, different tags).
    set_stride = h.l1d.num_sets * 64
    for i in range(1, h.l1d.assoc + 2):
        h.data_access(base + i * set_stride, 10_000 + i)
    ready, level = h.data_access(base, 50_000)
    assert level == "L2"
    assert ready == 50_000 + h.params.l2_latency - 1


def test_in_flight_merge():
    h = small_hierarchy()
    addr = 0x20000
    first_ready, _ = h.data_access(addr, 100)
    second_ready, level = h.data_access(addr, 110)
    assert level == "L1D"
    assert second_ready == first_ready + 1  # merged with the fill


def test_demand_caps_future_prefetch_fill():
    """The one-pass artifact repair: a prefetch 'from the future' cannot
    slow a demand miss beyond its own DRAM latency."""
    h = small_hierarchy()
    addr = 0x30000
    h.data_access(addr, 10_000, is_prefetch=True, from_agent=True)
    ready, level = h.data_access(addr, 100)
    assert ready <= 100 + h.params.dram_latency
    # And the line's fill was improved for later accesses too.
    later_ready, _ = h.data_access(addr, 120)
    assert later_ready <= 100 + h.params.dram_latency + 1


def test_dram_channel_serializes():
    h = small_hierarchy()
    interval = h.params.dram_service_interval
    r1, _ = h.data_access(0x40000, 100)
    r2, _ = h.data_access(0x50000, 100)
    assert r2 == r1 + interval


def test_perfect_dcache_mode():
    h = small_hierarchy(perfect_dcache=True)
    ready, level = h.data_access(0x60000, 100)
    assert level == "L1D"
    assert ready == 100 + h.params.l1_latency - 1


def test_agent_prefetch_saturation_drops():
    h = small_hierarchy()
    h._agent_pf_limit = 4
    drops_before = h.agent_prefetch_drops
    for i in range(10):
        h.data_access(0x80000 + i * 64, 100, is_prefetch=True, from_agent=True)
    assert h.agent_prefetch_drops > drops_before


def test_nextline_prefetcher_fills_ahead():
    params = HierarchyParams(enable_vldp=False, tlb_walk_latency=0)
    h = MemoryHierarchy(params)
    h.data_access(0x0, 100)
    # Lines +1 and +2 should be present (possibly in flight).
    assert h.l1d.contains(1)
    assert h.l1d.contains(2)


def test_inst_access_path():
    h = small_hierarchy()
    ready = h.inst_access(0x1000, 100)
    assert ready > 100  # cold miss
    ready = h.inst_access(0x1004, 10_000)  # same line, warmed
    assert ready == 10_000


def test_stats_by_source():
    h = small_hierarchy()
    h.data_access(0x1000, 0)
    h.data_access(0x2000, 0, is_store=True)
    h.data_access(0x3000, 0, from_agent=True)
    h.data_access(0x4000, 0, from_agent=True, is_prefetch=True)
    assert h.stats.demand_loads == 1
    assert h.stats.demand_stores == 1
    assert h.stats.agent_loads == 1
    assert h.stats.agent_prefetches == 1


def test_level_stats_shape():
    h = small_hierarchy()
    stats = h.level_stats()
    assert set(stats) == {"L1I", "L1D", "L2", "L3"}
    for level in stats.values():
        assert "accesses" in level and "misses" in level
