"""Energy model and FPGA cost estimator."""

from repro.core import PFMParams, SimConfig, simulate
from repro.core.stats import SimStats
from repro.power.core_energy import CoreEnergyModel, EnergyBreakdown
from repro.power.fpga import (
    ASTAR_ALT_STRUCTURE,
    FPGAModel,
    table4_header,
)
from repro.workloads.astar import build_astar_workload


def fake_stats(instructions=1000, cycles=2000, squashes=10):
    stats = SimStats()
    stats.instructions = instructions
    stats.cycles = cycles
    stats.issued_ops = instructions
    stats.prf_reads = 2 * instructions
    stats.prf_writes = instructions
    stats.conditional_branches = instructions // 10
    stats.pipeline_squashes = squashes
    stats.memory_levels = {
        "L1I": {"accesses": instructions // 4, "misses": 0},
        "L1D": {"accesses": instructions // 3, "misses": 10},
        "L2": {"accesses": 10, "misses": 5},
        "L3": {"accesses": 5, "misses": 2},
    }
    return stats


def test_energy_positive_and_decomposes():
    model = CoreEnergyModel()
    energy = model.energy(fake_stats())
    assert energy.dynamic_nj > 0
    assert energy.static_nj > 0
    assert energy.total_nj == (
        energy.dynamic_nj
        + energy.wasted_speculation_nj
        + energy.static_nj
        + energy.rf_dynamic_nj
        + energy.rf_static_nj
    )


def test_fewer_squashes_less_wasted_energy():
    model = CoreEnergyModel()
    many = model.energy(fake_stats(squashes=100))
    few = model.energy(fake_stats(squashes=5))
    assert many.wasted_speculation_nj > few.wasted_speculation_nj


def test_shorter_runtime_less_static_energy():
    model = CoreEnergyModel()
    slow = model.energy(fake_stats(cycles=10_000))
    fast = model.energy(fake_stats(cycles=2_000))
    assert slow.static_nj > fast.static_nj


def test_rf_power_adds_energy():
    model = CoreEnergyModel()
    without = model.energy(fake_stats())
    with_rf = model.energy(fake_stats(), rf_dynamic_w=0.25, rf_static_w=0.86)
    assert with_rf.total_nj > without.total_nj
    assert with_rf.rf_static_nj > with_rf.rf_dynamic_nj  # 0.86 W > 0.25 W


def test_normalization():
    model = CoreEnergyModel()
    base = model.energy(fake_stats(cycles=4000))
    better = model.energy(fake_stats(cycles=2000))
    assert better.normalized_to(base) < 1.0
    assert base.normalized_to(base) == 1.0


def test_pfm_run_reduces_total_energy():
    """Figure 18's direction on a real run: PFM (core+RF) below baseline."""
    window = 15_000
    baseline = simulate(
        build_astar_workload(grid_width=128, grid_height=128),
        SimConfig(max_instructions=window),
    )
    custom = simulate(
        build_astar_workload(grid_width=128, grid_height=128),
        SimConfig(max_instructions=window, pfm=PFMParams(delay=0)),
    )
    model = CoreEnergyModel()
    base_energy = model.energy(baseline)
    pfm_energy = model.energy(custom, rf_dynamic_w=0.25, rf_static_w=0.87)
    assert pfm_energy.normalized_to(base_energy) < 1.0


# ---------------------------------------------------------------------- #
# FPGA estimator
# ---------------------------------------------------------------------- #

def astar_structure(width=4, scope=8):
    from repro.pfm.component import RFTimings
    from repro.pfm.components.astar_bp import AstarBranchPredictor
    from repro.workloads.mem import MemoryImage

    return AstarBranchPredictor(
        RFTimings(4, width, 4), MemoryImage(), {"index_queue_entries": scope}
    ).structure()


def test_astar_estimate_matches_paper_band():
    estimate = FPGAModel().estimate("astar", astar_structure())
    assert 4500 <= estimate.lut <= 8500  # paper: 6249
    assert 2500 <= estimate.ff <= 5000  # paper: 3523
    assert estimate.bram == 0 and estimate.dsp == 0
    assert 400 <= estimate.freq_mhz <= 620  # paper: 500


def test_astar_alt_uses_bram():
    estimate = FPGAModel().estimate("astar-alt", ASTAR_ALT_STRUCTURE)
    assert estimate.bram >= 10  # paper: 17.5
    assert estimate.lut < 2000  # paper: 1064


def test_small_prefetcher_is_small():
    structure = {
        "queue_bits": 0, "cam_bits": 0, "comparators": 2, "adders": 3,
        "multipliers": 0, "fsm_states": 8, "table_bits": 128, "width": 1,
    }
    estimate = FPGAModel().estimate("libq", structure)
    assert estimate.lut < 600
    assert estimate.freq_mhz > 650
    assert estimate.dyn_logic_mw < 30


def test_dsp_multipliers_counted_and_slow_clock():
    base = {
        "queue_bits": 0, "cam_bits": 0, "comparators": 4, "adders": 6,
        "multipliers": 0, "fsm_states": 10, "table_bits": 256, "width": 1,
    }
    without = FPGAModel().estimate("x", base)
    with_dsp = FPGAModel().estimate("x", {**base, "multipliers": 4})
    assert with_dsp.dsp == 4
    assert with_dsp.freq_mhz < without.freq_mhz
    assert with_dsp.dyn_io_mw > without.dyn_io_mw


def test_wider_design_costs_more():
    narrow = FPGAModel().estimate("a", astar_structure(width=1))
    wide = FPGAModel().estimate("a", astar_structure(width=4))
    assert wide.ff > narrow.ff


def test_bigger_scope_costs_more():
    small = FPGAModel().estimate("a", astar_structure(scope=4))
    large = FPGAModel().estimate("a", astar_structure(scope=16))
    assert large.lut > small.lut
    assert large.freq_mhz <= small.freq_mhz


def test_static_power_device_dominated():
    estimate = FPGAModel().estimate("astar", astar_structure())
    assert 855 <= estimate.static_mw <= 880  # paper: 861-865


def test_row_rendering():
    estimate = FPGAModel().estimate("astar", astar_structure())
    assert "astar" in estimate.row()
    assert len(table4_header()) > 20
